package load

import (
	"sync"
	"time"
)

// Clock is the time source the dispatcher schedules against. The
// production runner uses the wall clock; the deterministic smoke mode
// injects a VirtualClock so every latency — and therefore the whole
// report — is a pure function of the seed. The same interface shape as
// server.Options.Clock plus Sleep, so one VirtualClock can serve both
// the generator and the serving middleware in in-process runs.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// WallClock is the production clock.
type WallClock struct{}

// Now returns the wall time.
func (WallClock) Now() time.Time { return time.Now() }

// Sleep blocks for d.
func (WallClock) Sleep(d time.Duration) { time.Sleep(d) }

// Epoch is the instant virtual runs start at: an arbitrary fixed point
// so formatted timestamps are stable across runs and machines (the
// paper's publication date).
var Epoch = time.Date(2021, time.April, 19, 0, 0, 0, 0, time.UTC)

// VirtualClock is a deterministic clock for the in-process smoke mode.
// Every Now call advances time by a seeded jittered step in
// [minStep, maxStep], so each request — which reads the clock a fixed
// number of times on its way through the dispatcher and the serving
// middleware — observes a nonzero, varied, and perfectly reproducible
// latency. Sleep advances time instantly, which is what turns a
// multi-second schedule into a sub-second run.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
	//peerlint:guardedby mu
	rng *Rand
	min time.Duration
	max time.Duration
}

// NewVirtualClock returns a virtual clock at Epoch whose Now calls
// auto-advance by a seeded step in [minStep, maxStep]. minStep =
// maxStep = 0 disables auto-advance (time moves only via Sleep).
func NewVirtualClock(seed uint64, minStep, maxStep time.Duration) *VirtualClock {
	if minStep < 0 {
		minStep = 0
	}
	if maxStep < minStep {
		maxStep = minStep
	}
	return &VirtualClock{now: Epoch, rng: NewRand(seed), min: minStep, max: maxStep}
}

// Now returns the current virtual time, then advances it by the next
// jittered step.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.now
	step := c.min
	if c.max > c.min {
		step += time.Duration(c.rng.Uint64() % uint64(c.max-c.min+1))
	}
	//peerlint:allow lockheld — time.Time.Add is a pure value computation; the read-advance pair must be atomic
	c.now = c.now.Add(step)
	return t
}

// Sleep advances virtual time by d without blocking.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	//peerlint:allow lockheld — time.Time.Add is a pure value computation; the read-advance pair must be atomic
	c.now = c.now.Add(d)
}
