package load

import (
	"testing"
	"time"
)

func TestScheduleParseAndString(t *testing.T) {
	good := []struct {
		spec  string
		canon string
		count int
	}{
		{"constant:100", "constant:100", 1000},
		{"constant:2.5", "constant:2.5", 25},
		{"ramp:100:300", "ramp:100:300", 2000},
		{"step:100:300:0.5", "step:100:300:0.5", 2000},
	}
	for _, c := range good {
		s, err := ParseSchedule(c.spec, 10*time.Second)
		if err != nil {
			t.Errorf("ParseSchedule(%q): %v", c.spec, err)
			continue
		}
		if s.String() != c.canon {
			t.Errorf("String() = %q, want %q", s.String(), c.canon)
		}
		if s.Count() != c.count {
			t.Errorf("%q Count() = %d, want %d", c.spec, s.Count(), c.count)
		}
	}
	bad := []string{
		"", "constant", "constant:0", "constant:-5", "constant:x",
		"ramp:100", "ramp:0:100", "step:100:300", "step:100:300:0",
		"step:100:300:1", "step:100:300:2", "burst:5", "constant:inf",
	}
	for _, spec := range bad {
		if _, err := ParseSchedule(spec, 10*time.Second); err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want error", spec)
		}
	}
	if _, err := ParseSchedule("constant:100", 0); err == nil {
		t.Error("zero duration accepted, want error")
	}
}

// TestScheduleAt pins intended send times. Durations are integers, so
// exact comparison is safe for the rational cases; the ramp inversion
// gets a tolerance.
func TestScheduleAt(t *testing.T) {
	within := func(got, want, tol time.Duration, name string) {
		t.Helper()
		d := got - want
		if d < -tol || d > tol {
			t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
		}
	}

	constant, err := ParseSchedule("constant:100", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	within(constant.At(0), 0, 0, "constant At(0)")
	within(constant.At(1), 10*time.Millisecond, 0, "constant At(1)")
	within(constant.At(500), 5*time.Second, 0, "constant At(500)")
	// Indexes past Count extrapolate rather than clamping.
	within(constant.At(2000), 20*time.Second, 0, "constant At(2000)")

	step, err := ParseSchedule("step:100:300:0.5", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	within(step.At(0), 0, 0, "step At(0)")
	within(step.At(250), 2500*time.Millisecond, 0, "step At(250)")
	within(step.At(500), 5*time.Second, 0, "step At(500)")                // the step boundary
	within(step.At(800), 6*time.Second, time.Microsecond, "step At(800)") // 300/s after it

	ramp, err := ParseSchedule("ramp:100:300", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	within(ramp.At(0), 0, 0, "ramp At(0)")
	// N(t) = 100t + 10t²; N(10) = 2000 and N⁻¹(1000) = 6.18034s.
	within(ramp.At(2000), 10*time.Second, time.Microsecond, "ramp At(2000)")
	within(ramp.At(1000), 6180339887*time.Nanosecond, 2*time.Microsecond, "ramp At(1000)")

	// Arrival times must be strictly increasing for every shape.
	for _, s := range []*Schedule{constant, step, ramp} {
		prev := s.At(0) - 1
		for i := 0; i < 2100; i++ {
			at := s.At(i)
			if at <= prev {
				t.Fatalf("%s At(%d) = %v not after At(%d) = %v", s, i, at, i-1, prev)
			}
			prev = at
		}
	}
}
