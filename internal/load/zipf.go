package load

import (
	"fmt"
	"math"
	"slices"
)

// Zipf samples keyspace slots with the rank-frequency popularity law
// p(rank) ∝ 1/rank^s — the standard model for session popularity in a
// churn-heavy cohort platform: a few hot cohorts absorb most of the
// traffic while a long tail stays warm. s = 0 degenerates to uniform;
// larger s concentrates more of the mass on the head (slot 0 is always
// the hottest key).
//
// The sampler is inverse-CDF over a precomputed cumulative table, so a
// draw is one binary search on a caller-supplied uniform value — no
// internal randomness, which keeps Zipf a pure function and lets the
// plan builder own the single seeded stream.
type Zipf struct {
	cum []float64
}

// NewZipf builds a sampler over n slots with exponent s ≥ 0.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("load: zipf needs at least 1 slot, got %d", n)
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("load: zipf exponent must be a finite value ≥ 0, got %v", s)
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	// Normalize in a second fixed-order pass so the table is a pure
	// function of (n, s) on every platform.
	for i := range cum {
		cum[i] /= total
	}
	cum[n-1] = 1 // pin the top against rounding so Pick(≈1) stays in range
	return &Zipf{cum: cum}, nil
}

// N returns the number of slots.
func (z *Zipf) N() int { return len(z.cum) }

// Pick maps a uniform value u ∈ [0, 1) to a slot index: the first slot
// whose cumulative probability exceeds u.
func (z *Zipf) Pick(u float64) int {
	i, _ := slices.BinarySearch(z.cum, u)
	if i >= len(z.cum) {
		i = len(z.cum) - 1
	}
	return i
}
