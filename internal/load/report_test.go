package load

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleReport() *Report {
	st := &Stats{PerOp: map[OpKind]*RouteStats{}, Elapsed: 3 * time.Second}
	rs := &RouteStats{Hist: &Hist{}, status: map[string]uint64{}}
	for v := int64(1); v <= 100; v++ {
		rs.Hist.Record(v * int64(time.Millisecond))
	}
	rs.status["2xx"] = 100
	st.PerOp[OpRound] = rs
	rep := &Report{
		GoVersion:  "go0.0test",
		GoMaxProcs: 4,
		Seed:       1,
		Schedule:   "constant:500",
		Mix:        "round=1",
		Sessions:   8,
		ZipfS:      1.1,
		Ops:        100,
	}
	rep.Fill(st)
	rep.HTTPIssued = map[string]uint64{"/v1/sessions/{id}/round": 100}
	return rep
}

// TestReportRoundTrip pins Encode/ParseReport as inverses: parse of an
// encoded report yields an equal value and re-encodes to identical
// bytes.
func TestReportRoundTrip(t *testing.T) {
	rep := sampleReport()
	enc, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(enc, []byte("\n")) {
		t.Error("Encode output missing trailing newline")
	}
	back, err := ParseReport(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", back, rep)
	}
	enc2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Error("re-encode differs from original encode")
	}
	if _, err := ParseReport([]byte("{not json")); err == nil {
		t.Error("malformed report parsed without error")
	}
}

// TestReportFill checks entry naming and route ordering.
func TestReportFill(t *testing.T) {
	rep := sampleReport()
	if len(rep.Routes) != 2 || rep.Routes[0].Op != "all" || rep.Routes[1].Op != "round" {
		t.Fatalf("routes = %+v, want [all round]", rep.Routes)
	}
	names := make([]string, len(rep.Entries))
	for i, e := range rep.Entries {
		names[i] = e.Name
	}
	want := []string{"load-all-p50", "load-all-p99", "load-round-p50", "load-round-p99"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("entry names = %v, want %v", names, want)
	}
	if rep.Entries[0].N != 100 {
		t.Errorf("entry N = %d, want 100", rep.Entries[0].N)
	}
	rr, ok := rep.Route("round")
	if !ok {
		t.Fatal("round route missing")
	}
	if rr.Count != 100 || rr.Status["2xx"] != 100 {
		t.Errorf("round route = %+v", rr)
	}
}

// TestCompareDetectsRegression drives the baseline gate both ways.
func TestCompareDetectsRegression(t *testing.T) {
	base := &Report{Entries: []Entry{
		{Name: "load-round-p99", N: 100, NsPerOp: 1000},
		{Name: "load-join-p99", N: 100, NsPerOp: 1000},
	}}
	cur := &Report{Entries: []Entry{
		{Name: "load-round-p99", N: 100, NsPerOp: 1200},
		{Name: "load-new-p99", N: 100, NsPerOp: 5},
	}}

	var warn bytes.Buffer
	// 1.2x is within a 25% budget; the unknown entry only warns.
	if err := Compare(cur, base, 0.25, &warn); err != nil {
		t.Errorf("Compare within budget failed: %v", err)
	}
	if !strings.Contains(warn.String(), "missing from baseline") {
		t.Errorf("expected missing-from-baseline warning, got:\n%s", warn.String())
	}

	// 1.2x exceeds a 10% budget.
	err := Compare(cur, base, 0.10, &warn)
	if err == nil {
		t.Fatal("Compare past budget succeeded, want regression error")
	}
	if !strings.Contains(err.Error(), "load-round-p99") {
		t.Errorf("regression error %q does not name the entry", err)
	}
}

// TestCompareFile covers the file-level wrapper and its failure modes.
func TestCompareFile(t *testing.T) {
	dir := t.TempDir()
	rep := sampleReport()

	good := filepath.Join(dir, "base.json")
	enc, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CompareFile(rep, good, 0.01, os.Stderr); err != nil {
		t.Errorf("self-compare failed: %v", err)
	}

	if err := CompareFile(rep, filepath.Join(dir, "absent.json"), 0.01, os.Stderr); err == nil {
		t.Error("missing baseline accepted")
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CompareFile(rep, bad, 0.01, os.Stderr); err == nil {
		t.Error("malformed baseline accepted")
	}
}

// TestParseSLOs covers the gate grammar.
func TestParseSLOs(t *testing.T) {
	slos, err := ParseSLOs("round:p99<50ms, all:p50<2ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(slos) != 2 {
		t.Fatalf("got %d SLOs, want 2", len(slos))
	}
	if slos[0].Op != "round" || slos[0].Quantile != "p99" || slos[0].Bound != 50*time.Millisecond {
		t.Errorf("slos[0] = %+v", slos[0])
	}
	if got, err := ParseSLOs(""); err != nil || len(got) != 0 {
		t.Errorf("empty spec: %v, %v", got, err)
	}
	for _, bad := range []string{"round<50ms", "round:p42<50ms", "warp:p99<50ms", "round:p99<banana", "round:p99<-5ms", "round:p99"} {
		if _, err := ParseSLOs(bad); err == nil {
			t.Errorf("ParseSLOs(%q) succeeded, want error", bad)
		}
	}
}

// TestCheckSLOs drives the gate against a known distribution: p99 of
// the sample report is 98ms (1..100ms recorded, bucket lower bound).
func TestCheckSLOs(t *testing.T) {
	rep := sampleReport()
	pass, err := ParseSLOs("round:p99<100ms,all:p50<60ms")
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckSLOs(rep, pass); len(v) != 0 {
		t.Errorf("expected pass, got violations: %v", v)
	}
	fail, err := ParseSLOs("round:p99<50ms")
	if err != nil {
		t.Fatal(err)
	}
	v := CheckSLOs(rep, fail)
	if len(v) != 1 || !strings.Contains(v[0], "round p99") {
		t.Errorf("violations = %v, want one naming round p99", v)
	}
	// A gate on an op the workload never exercised must fail loudly.
	absent, err := ParseSLOs("join:p50<1s")
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckSLOs(rep, absent); len(v) != 1 {
		t.Errorf("gate on absent op passed: %v", v)
	}
}
