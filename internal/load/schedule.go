package load

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Schedule is an open-loop arrival process: it maps request index i to
// the intended send time of the i-th request, measured from the start
// of the run. The schedule is fixed before the run begins and never
// reacts to response times — that independence is what makes the
// generator open-loop, and measuring every latency from At(i) (rather
// than from the moment the dispatcher actually fired) is what makes it
// coordinated-omission-safe.
//
// Three shapes cover the production-shaped questions the serving tier
// gets asked:
//
//	constant:R        fixed R requests/second
//	ramp:R0:R1        rate climbs linearly from R0 to R1 over the run
//	step:R0:R1:F      R0 until fraction F of the run, then R1 (load spike)
type Schedule struct {
	kind     string
	r0, r1   float64
	frac     float64
	duration time.Duration
}

// ParseSchedule parses a schedule spec against the run duration.
func ParseSchedule(spec string, duration time.Duration) (*Schedule, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("load: schedule needs a positive duration, got %v", duration)
	}
	parts := strings.Split(spec, ":")
	rate := func(s string) (float64, error) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return 0, fmt.Errorf("load: bad rate %q (want a positive requests/second value)", s)
		}
		return v, nil
	}
	sc := &Schedule{kind: parts[0], duration: duration}
	switch {
	case parts[0] == "constant" && len(parts) == 2:
		r, err := rate(parts[1])
		if err != nil {
			return nil, err
		}
		sc.r0, sc.r1 = r, r
	case parts[0] == "ramp" && len(parts) == 3:
		var err error
		if sc.r0, err = rate(parts[1]); err != nil {
			return nil, err
		}
		if sc.r1, err = rate(parts[2]); err != nil {
			return nil, err
		}
	case parts[0] == "step" && len(parts) == 4:
		var err error
		if sc.r0, err = rate(parts[1]); err != nil {
			return nil, err
		}
		if sc.r1, err = rate(parts[2]); err != nil {
			return nil, err
		}
		f, err := strconv.ParseFloat(parts[3], 64)
		if err != nil || !(f > 0 && f < 1) {
			return nil, fmt.Errorf("load: bad step fraction %q (want a value in (0, 1))", parts[3])
		}
		sc.frac = f
	default:
		return nil, fmt.Errorf("load: bad schedule %q (want constant:R, ramp:R0:R1, or step:R0:R1:F)", spec)
	}
	return sc, nil
}

// String returns the canonical spec, for the report header.
func (s *Schedule) String() string {
	switch s.kind {
	case "ramp":
		return fmt.Sprintf("ramp:%g:%g", s.r0, s.r1)
	case "step":
		return fmt.Sprintf("step:%g:%g:%g", s.r0, s.r1, s.frac)
	default:
		return fmt.Sprintf("constant:%g", s.r0)
	}
}

// Count returns the number of arrivals the schedule produces over its
// duration — the integral of the instantaneous rate.
func (s *Schedule) Count() int {
	d := s.duration.Seconds()
	switch s.kind {
	case "ramp":
		return int((s.r0 + s.r1) / 2 * d)
	case "step":
		return int(s.r0*s.frac*d + s.r1*(1-s.frac)*d)
	default:
		return int(s.r0 * d)
	}
}

// At returns the intended send time of request i, as an offset from
// the run start. Indexes past Count() extrapolate the final rate, so a
// caller-imposed op count never reads out of range.
func (s *Schedule) At(i int) time.Duration {
	n := float64(i)
	var sec float64
	switch s.kind {
	case "ramp":
		// Cumulative arrivals N(t) = r0·t + (r1−r0)·t²/(2D); invert the
		// quadratic for t at N = i. A (near-)flat ramp degenerates to
		// the constant formula — the quadratic inversion divides by the
		// slope, which cancels catastrophically as r1 → r0.
		c2 := (s.r1 - s.r0) / (2 * s.duration.Seconds())
		if math.Abs(c2) < 1e-9 {
			sec = n / s.r0
			break
		}
		sec = (-s.r0 + math.Sqrt(s.r0*s.r0+4*c2*n)) / (2 * c2)
	case "step":
		d := s.duration.Seconds()
		n0 := s.r0 * s.frac * d // arrivals before the step
		if n < n0 {
			sec = n / s.r0
		} else {
			sec = s.frac*d + (n-n0)/s.r1
		}
	default:
		sec = n / s.r0
	}
	return time.Duration(sec * float64(time.Second))
}
