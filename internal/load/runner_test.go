package load

import (
	"errors"
	"testing"
	"time"
)

// slowFirstTarget stalls the virtual clock on op 0 and is instant for
// every other op.
type slowFirstTarget struct {
	clock Clock
	stall time.Duration
}

func (t *slowFirstTarget) Do(op Op) (int, error) {
	if op.Seq == 0 {
		t.clock.Sleep(t.stall)
	}
	return 200, nil
}

// TestRunNeverCreditsCoordinatedOmission is the load generator's core
// correctness property. Three ops arrive at 0/10/20ms; the first stalls
// the (jitter-free) clock for 50ms. A closed-loop generator would send
// ops 1 and 2 late and measure them as instant; an open-loop CO-safe
// generator charges the stall to every op queued behind it. The exact
// latencies must be 50, 40, and 30ms.
func TestRunNeverCreditsCoordinatedOmission(t *testing.T) {
	clock := NewVirtualClock(1, 0, 0) // no jitter: time moves only via Sleep
	sched, err := ParseSchedule("constant:100", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ops := []Op{{Seq: 0, Kind: OpRound}, {Seq: 1, Kind: OpRound}, {Seq: 2, Kind: OpRound}}
	tgt := &slowFirstTarget{clock: clock, stall: 50 * time.Millisecond}

	st := Run(ops, sched, tgt, RunConfig{Sequential: true, Clock: clock})

	h := st.PerOp[OpRound].Hist
	if got := h.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	if got := h.Max(); got != int64(50*time.Millisecond) {
		t.Errorf("Max = %v, want 50ms (the stalled op)", time.Duration(got))
	}
	if got := h.Min(); got != int64(30*time.Millisecond) {
		t.Errorf("Min = %v, want 30ms (op 2, still charged from its intended send)", time.Duration(got))
	}
	if got := h.Sum(); got != int64(120*time.Millisecond) {
		t.Errorf("Sum = %v, want 120ms = 50+40+30", time.Duration(got))
	}
	if got := st.Elapsed; got != 50*time.Millisecond {
		t.Errorf("Elapsed = %v, want 50ms", got)
	}
}

// TestRunHonorsSchedule verifies the other half of open-loop behavior:
// when the target is instant, each op fires at its intended time and
// latencies are zero.
func TestRunHonorsSchedule(t *testing.T) {
	clock := NewVirtualClock(1, 0, 0)
	sched, err := ParseSchedule("constant:100", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]Op, 10)
	for i := range ops {
		ops[i] = Op{Seq: i, Kind: OpStatus}
	}
	tgt := &slowFirstTarget{clock: clock} // zero stall: instant for all

	st := Run(ops, sched, tgt, RunConfig{Sequential: true, Clock: clock})

	h := st.PerOp[OpStatus].Hist
	if got := h.Max(); got != 0 {
		t.Errorf("Max = %v, want 0 for an instant target on schedule", time.Duration(got))
	}
	if got := st.Elapsed; got != 90*time.Millisecond {
		t.Errorf("Elapsed = %v, want 90ms (the last intended send)", got)
	}
}

// errTarget fails some ops at the transport level.
type errTarget struct{}

func (errTarget) Do(op Op) (int, error) {
	if op.Seq%2 == 1 {
		return 0, errors.New("connection refused")
	}
	return 503, nil
}

// TestRunCountsErrorsAndStatus verifies transport errors are kept out
// of the latency histogram and status classes are tallied.
func TestRunCountsErrorsAndStatus(t *testing.T) {
	clock := NewVirtualClock(1, 0, 0)
	sched, err := ParseSchedule("constant:1000", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]Op, 6)
	for i := range ops {
		ops[i] = Op{Seq: i, Kind: OpJoin}
	}
	st := Run(ops, sched, errTarget{}, RunConfig{Sequential: true, Clock: clock})

	rs := st.PerOp[OpJoin]
	if got := rs.Errors(); got != 3 {
		t.Errorf("Errors = %d, want 3", got)
	}
	if got := rs.Hist.Count(); got != 3 {
		t.Errorf("Hist.Count = %d, want 3 (errors excluded)", got)
	}
	if got := rs.Status()["5xx"]; got != 3 {
		t.Errorf("Status[5xx] = %d, want 3", got)
	}
}

// TestRunConcurrentCompletes exercises the concurrent dispatcher with
// a real clock: all ops complete, none are lost to the semaphore.
func TestRunConcurrentCompletes(t *testing.T) {
	sched, err := ParseSchedule("constant:100000", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Seq: i, Kind: OpRound}
	}
	tgt := &slowFirstTarget{clock: WallClock{}} // instant
	st := Run(ops, sched, tgt, RunConfig{MaxInFlight: 8})
	if got := st.PerOp[OpRound].Hist.Count(); got != n {
		t.Errorf("Count = %d, want %d", got, n)
	}
}
