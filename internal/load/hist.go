package load

import (
	"math/bits"
	"sync/atomic"
)

// Hist is an HDR-style latency histogram over non-negative nanosecond
// values: log-linear buckets — 32 sub-buckets per power of two — give
// a bounded ≤ ~3.1% relative error at every magnitude from 1 ns to
// years, using a fixed 15 KiB of counters and no allocation per
// Record. This is the same bucketing idea as HdrHistogram, sized for
// latency: a fixed-bucket Prometheus histogram (internal/metrics)
// answers "how many requests were slower than X" for a handful of X,
// while percentile gates (p99 < 50ms) need fine resolution across the
// whole dynamic range.
//
// All methods are safe for concurrent use; Record is a few atomic adds.
// Quantile returns the *lower bound* of the bucket holding the ranked
// observation — a deterministic, conservative value (never above the
// true quantile by construction, never below it by more than the
// bucket's ~3.1% width), which keeps golden-pinned reports exact.
type Hist struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
	// minPlus1 holds min+1 so the zero value means "no observations yet"
	// even though 0 is a recordable latency.
	minPlus1 atomic.Int64
}

const (
	// histSubBits sets the sub-bucket resolution: 2^5 = 32 sub-buckets
	// per power of two, i.e. ≤ 1/32 ≈ 3.1% relative bucket width.
	histSubBits = 5
	histSub     = 1 << histSubBits
	// histBuckets covers every non-negative int64 (values up to 2^63-1
	// ns, ~292 years), so bucketIndex never needs a saturation branch.
	histBuckets = histSub * (64 - histSubBits)
)

// bucketIndex maps a value to its bucket. Values below histSub get an
// exact bucket each; above, the bucket is identified by the exponent k
// of the leading bit and the next histSubBits bits — the classic
// HdrHistogram indexing.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	k := bits.Len64(u) - 1 // u ∈ [2^k, 2^(k+1)), k ≥ histSubBits
	return histSub*(k-histSubBits) + int(u>>uint(k-histSubBits))
}

// bucketLower returns the smallest value that lands in bucket i — the
// inverse of bucketIndex up to bucket resolution.
func bucketLower(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	m := i>>histSubBits - 1
	return int64(i-histSub*m) << uint(m)
}

// Record adds one observation.
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.minPlus1.Load()
		if old != 0 && v+1 >= old {
			break
		}
		if h.minPlus1.CompareAndSwap(old, v+1) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations, in ns.
func (h *Hist) Sum() int64 { return h.sum.Load() }

// Max returns the largest observation (0 when empty).
func (h *Hist) Max() int64 { return h.max.Load() }

// Min returns the smallest observation (0 when empty).
func (h *Hist) Min() int64 {
	m := h.minPlus1.Load()
	if m == 0 {
		return 0
	}
	return m - 1
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Hist) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the value at quantile q ∈ [0, 1]: the lower bound
// of the bucket containing the ⌈q·count⌉-th smallest observation.
// q ≥ 1 returns the exact recorded maximum; an empty histogram returns
// 0.
func (h *Hist) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q >= 1 {
		return h.Max()
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			return bucketLower(i)
		}
	}
	return h.Max()
}

// Merge folds o's observations into h. Min/max merge exactly; bucket
// counts add.
func (h *Hist) Merge(o *Hist) {
	for i := 0; i < histBuckets; i++ {
		if c := o.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	n := o.count.Load()
	if n == 0 {
		return
	}
	h.count.Add(n)
	h.sum.Add(o.sum.Load())
	omax := o.max.Load()
	for {
		old := h.max.Load()
		if omax <= old || h.max.CompareAndSwap(old, omax) {
			break
		}
	}
	omin := o.minPlus1.Load()
	for {
		old := h.minPlus1.Load()
		if omin == 0 || (old != 0 && omin >= old) {
			break
		}
		if h.minPlus1.CompareAndSwap(old, omin) {
			break
		}
	}
}

// HistBucket is one non-empty bucket of a histogram snapshot.
type HistBucket struct {
	// LowerNs is the bucket's inclusive lower bound in nanoseconds.
	LowerNs int64 `json:"lower_ns"`
	// Count is the number of observations in the bucket.
	Count uint64 `json:"count"`
}

// Buckets returns the non-empty buckets in ascending order — the
// report's compact export of the full distribution.
func (h *Hist) Buckets() []HistBucket {
	var out []HistBucket
	for i := 0; i < histBuckets; i++ {
		if c := h.counts[i].Load(); c > 0 {
			out = append(out, HistBucket{LowerNs: bucketLower(i), Count: c})
		}
	}
	return out
}
