package load

// Rand is a tiny deterministic generator (splitmix64). The load
// harness cannot lean on the global math/rand source — shared state
// breaks replayability and the randsource analyzer bans it — and each
// component (plan, keyspace, clock jitter, request bodies) needs its
// own independent stream that is a pure function of the run seed.
// Splitmix64 is the standard seeding primitive: one uint64 of state,
// full 2^64 period over the counter, and excellent equidistribution
// for this purpose.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Distinct components
// should derive distinct seeds (e.g. seed ^ a fixed constant) so their
// streams never overlap.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next value of the stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
// The construction (top 53 bits divided by 2^53) is exact in IEEE-754,
// so the stream is bit-identical on every platform.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n); n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}
