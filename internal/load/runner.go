package load

import (
	"sync"
	"time"
)

// Target executes one workload operation against the system under
// test. Do returns the HTTP status code of the response; err reports a
// transport-level failure (no response at all). Implementations own
// all protocol state — session-id mappings, request bodies, connection
// pools — so the runner stays protocol-agnostic.
type Target interface {
	Do(op Op) (status int, err error)
}

// RouteStats accumulates one op kind's results: the latency
// distribution of responded requests, response counts by status class,
// and transport errors.
type RouteStats struct {
	// Hist holds latencies of every request that produced a response,
	// measured from the intended send time.
	Hist *Hist

	mu sync.Mutex
	//peerlint:guardedby mu
	status map[string]uint64
	//peerlint:guardedby mu
	errors uint64
}

// record books one completed op.
func (rs *RouteStats) record(status int, err error, latency time.Duration) {
	if err != nil {
		rs.mu.Lock()
		rs.errors++
		rs.mu.Unlock()
		return
	}
	rs.Hist.Record(int64(latency))
	class := statusClass(status)
	rs.mu.Lock()
	rs.status[class]++
	rs.mu.Unlock()
}

// statusClass collapses a status code into its class ("2xx" … "5xx").
func statusClass(status int) string {
	switch status / 100 {
	case 1:
		return "1xx"
	case 2:
		return "2xx"
	case 3:
		return "3xx"
	case 4:
		return "4xx"
	case 5:
		return "5xx"
	}
	return "other"
}

// Status returns a copy of the per-class response counts.
func (rs *RouteStats) Status() map[string]uint64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make(map[string]uint64, len(rs.status))
	for k, v := range rs.status {
		out[k] = v
	}
	return out
}

// Errors returns the transport-failure count.
func (rs *RouteStats) Errors() uint64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.errors
}

// Stats is the client-side result of a run.
type Stats struct {
	// PerOp holds one RouteStats per op kind that appeared in the plan.
	PerOp map[OpKind]*RouteStats
	// Elapsed is the clock time the run spanned, from first intended
	// send to last completion.
	Elapsed time.Duration
}

// RunConfig configures the dispatcher.
type RunConfig struct {
	// MaxInFlight caps concurrently outstanding requests in concurrent
	// mode (≤ 0 means 64). The cap is a client-side resource bound, not
	// a closed loop: an op that waits for a slot is still timed from its
	// intended send time, so saturation shows up as latency — never as
	// silently dropped arrivals.
	MaxInFlight int
	// Sequential executes ops inline in schedule order on the calling
	// goroutine — the deterministic smoke mode. Latencies still measure
	// from intended send times, so a slow op delays (and is charged to)
	// every op queued behind it, exactly as in concurrent mode.
	Sequential bool
	// Clock supplies time; nil uses the wall clock.
	Clock Clock
}

// Run dispatches the plan against tgt on the schedule's intended send
// times and returns the client-side stats.
//
// The loop is open-loop: the dispatcher sleeps until At(i), fires op i,
// and moves on — it never waits for a response before honoring the
// next arrival (concurrent mode), and in both modes the recorded
// latency is completion − intended-send. If the dispatcher itself
// falls behind (every in-flight slot busy, or a sequential op running
// long), the backlog is charged to every delayed op: that is the
// coordinated-omission guarantee.
func Run(ops []Op, sched *Schedule, tgt Target, cfg RunConfig) *Stats {
	clock := cfg.Clock
	if clock == nil {
		clock = WallClock{}
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 64
	}

	st := &Stats{PerOp: make(map[OpKind]*RouteStats)}
	for _, op := range ops {
		if st.PerOp[op.Kind] == nil {
			st.PerOp[op.Kind] = &RouteStats{Hist: &Hist{}, status: make(map[string]uint64)}
		}
	}

	start := clock.Now()
	sem := make(chan struct{}, maxInFlight)
	var wg sync.WaitGroup
	for _, op := range ops {
		intended := start.Add(sched.At(op.Seq))
		if d := intended.Sub(clock.Now()); d > 0 {
			clock.Sleep(d)
		}
		rs := st.PerOp[op.Kind]
		if cfg.Sequential {
			status, err := tgt.Do(op)
			rs.record(status, err, clock.Now().Sub(intended))
			continue
		}
		sem <- struct{}{} // blocks when saturated; latency still runs from intended
		wg.Add(1)
		go func(op Op, intended time.Time, rs *RouteStats) {
			defer wg.Done()
			status, err := tgt.Do(op)
			rs.record(status, err, clock.Now().Sub(intended))
			<-sem
		}(op, intended, rs)
	}
	wg.Wait()
	st.Elapsed = clock.Now().Sub(start)
	return st
}
