package load

import "testing"

// TestRandPinned pins the splitmix64 stream: any change to the
// generator silently reshuffles every plan, so the exact values are
// golden.
func TestRandPinned(t *testing.T) {
	rng := NewRand(42)
	want := []uint64{0xbdd732262feb6e95, 0x28efe333b266f103, 0x47526757130f9f52, 0x581ce1ff0e4ae394}
	for i, w := range want {
		if got := rng.Uint64(); got != w {
			t.Fatalf("Uint64 #%d = %#x, want %#x", i, got, w)
		}
	}
	rng = NewRand(42)
	for i := 0; i < 1000; i++ {
		f := rng.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 #%d = %g outside [0, 1)", i, f)
		}
	}
	for i := 0; i < 1000; i++ {
		if n := rng.Intn(7); n < 0 || n >= 7 {
			t.Fatalf("Intn(7) = %d outside range", n)
		}
	}
}

// TestZipfPinned pins key selection at a fixed seed — the workload's
// session-popularity stream must never drift between releases.
func TestZipfPinned(t *testing.T) {
	z, err := NewZipf(8, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(42)
	want := []int{3, 0, 0, 0, 0, 5, 0, 4, 0, 2, 0, 1}
	for i, w := range want {
		if got := z.Pick(rng.Float64()); got != w {
			t.Fatalf("pick #%d = %d, want %d", i, got, w)
		}
	}
}

// TestZipfShape checks the distribution properties that make the head
// hot: rank frequencies are non-increasing in s>0, and s=0 degenerates
// to uniform.
func TestZipfShape(t *testing.T) {
	const n, draws = 8, 200_000
	count := func(s float64, seed uint64) [n]int {
		z, err := NewZipf(n, s)
		if err != nil {
			t.Fatal(err)
		}
		rng := NewRand(seed)
		var c [n]int
		for i := 0; i < draws; i++ {
			c[z.Pick(rng.Float64())]++
		}
		return c
	}

	skewed := count(1.2, 7)
	for i := 1; i < n; i++ {
		// Allow small sampling noise on the flat tail, none on the head.
		if skewed[i] > skewed[i-1]+draws/200 {
			t.Errorf("zipf(1.2) rank %d count %d above rank %d count %d", i, skewed[i], i-1, skewed[i-1])
		}
	}
	if skewed[0] < draws/4 {
		t.Errorf("zipf(1.2) head got %d of %d draws; expected a hot head", skewed[0], draws)
	}

	uniform := count(0, 7)
	for i := 0; i < n; i++ {
		lo, hi := draws/n-draws/50, draws/n+draws/50
		if uniform[i] < lo || uniform[i] > hi {
			t.Errorf("zipf(0) rank %d count %d outside uniform band [%d, %d]", i, uniform[i], lo, hi)
		}
	}

	// Same seed, same picks — the determinism contract.
	if count(1.2, 99) != count(1.2, 99) {
		t.Error("identical seeds produced different pick counts")
	}
}

// TestZipfErrors rejects degenerate parameters.
func TestZipfErrors(t *testing.T) {
	for _, c := range []struct {
		n int
		s float64
	}{{0, 1}, {-3, 1}, {4, -0.5}} {
		if _, err := NewZipf(c.n, c.s); err == nil {
			t.Errorf("NewZipf(%d, %g) succeeded, want error", c.n, c.s)
		}
	}
}

// TestBuildPlanDeterminism verifies the plan is a pure function of its
// seeds and that draw alignment holds: two plans from equal seeds are
// identical element-wise.
func TestBuildPlanDeterminism(t *testing.T) {
	mix, err := ParseMix("join=4,round=3,create=1")
	if err != nil {
		t.Fatal(err)
	}
	z, err := NewZipf(16, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	a := BuildPlan(500, mix, z, NewRand(11))
	b := BuildPlan(500, mix, z, NewRand(11))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plans diverge at op %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i, op := range a {
		if op.Seq != i {
			t.Fatalf("op %d has Seq %d", i, op.Seq)
		}
		if op.Kind != OpJoin && op.Kind != OpRound && op.Kind != OpCreate {
			t.Fatalf("op %d has kind %v outside the mix", i, op.Kind)
		}
		if op.Key < 0 || op.Key >= 16 {
			t.Fatalf("op %d key %d outside keyspace", i, op.Key)
		}
		if op.Skill <= 0 || op.Skill > 1 {
			t.Fatalf("op %d skill %g outside (0, 1]", i, op.Skill)
		}
	}
}

// TestMixParse covers spec parsing and the canonical rendering.
func TestMixParse(t *testing.T) {
	m, err := ParseMix("round=3, join=4 ,create=1")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.String(), "create=1,join=4,round=3"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	for _, bad := range []string{"", "round", "round=x", "round=-1", "warp=2"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) succeeded, want error", bad)
		}
	}
	// pick must respect zero weights: a mix without deletes never picks one.
	rng := NewRand(3)
	for i := 0; i < 10_000; i++ {
		if k := m.pick(rng.Float64()); k == OpDelete || k == OpLeave {
			t.Fatalf("pick returned %v, which has zero weight", k)
		}
	}
}
