package load

import (
	"fmt"
	"strconv"
	"strings"
)

// OpKind enumerates the workload operations — the session lifecycle
// verbs a real cohort platform sees, plus the stateless endpoints.
type OpKind uint8

const (
	// OpCreate creates a fresh session for the op's keyspace slot,
	// replacing (and retiring) whatever session held the slot.
	OpCreate OpKind = iota
	// OpDelete closes the slot's current session — the churn event that
	// races DELETE /v1/sessions/{id} against in-flight rounds.
	OpDelete
	// OpJoin adds a participant with a seeded skill.
	OpJoin
	// OpLeave removes a previously joined participant.
	OpLeave
	// OpRound runs one learning round.
	OpRound
	// OpStatus reads the session status snapshot.
	OpStatus
	// OpSimulate runs a small stateless /v1/simulate instance.
	OpSimulate
	// OpGroup runs a small stateless /v1/group instance.
	OpGroup

	numOpKinds
)

// opNames maps kinds to the names used in mix specs, SLO specs, and
// report entries.
var opNames = [numOpKinds]string{
	"create", "delete", "join", "leave", "round", "status", "simulate", "group",
}

// String returns the op's mix/report name.
func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one scheduled request of the plan.
type Op struct {
	// Seq is the op's index in the plan (and into Schedule.At).
	Seq int
	// Kind selects the operation.
	Kind OpKind
	// Key is the keyspace slot the op targets (session-scoped ops only).
	Key int
	// Skill is the joining participant's skill (OpJoin only).
	Skill float64
}

// Mix is a weighted op distribution parsed from a spec like
// "join=4,leave=2,round=3,status=2,create=1,delete=1,simulate=1".
// Weights are relative; ops absent from the spec have weight zero.
type Mix struct {
	weights [numOpKinds]float64
	cum     [numOpKinds]float64
	total   float64
}

// ParseMix parses a mix spec. At least one weight must be positive.
func ParseMix(spec string) (*Mix, error) {
	m := &Mix{}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("load: bad mix term %q (want op=weight)", field)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("load: bad mix weight %q for %q (want a value ≥ 0)", val, name)
		}
		kind, err := parseOpName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		m.weights[kind] = w
	}
	for k, w := range m.weights {
		m.total += w
		m.cum[k] = m.total
	}
	if m.total <= 0 {
		return nil, fmt.Errorf("load: mix %q has no positive weights", spec)
	}
	return m, nil
}

func parseOpName(name string) (OpKind, error) {
	for k, n := range opNames {
		if n == name {
			return OpKind(k), nil
		}
	}
	return 0, fmt.Errorf("load: unknown op %q (known: %s)", name, strings.Join(opNames[:], ", "))
}

// String renders the canonical spec (ops in fixed order, zero weights
// dropped), for the report header.
func (m *Mix) String() string {
	var parts []string
	for k, w := range m.weights {
		if w > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", OpKind(k), w))
		}
	}
	return strings.Join(parts, ",")
}

// pick maps a uniform value u ∈ [0, 1) to an op kind by cumulative
// weight.
func (m *Mix) pick(u float64) OpKind {
	target := u * m.total
	for k := range m.cum {
		if target < m.cum[k] {
			return OpKind(k)
		}
	}
	return numOpKinds - 1
}

// BuildPlan generates the op sequence: n ops, kinds drawn from the
// mix, keys drawn from the Zipf keyspace, join skills in (0, 1]. The
// plan is a pure function of (n, mix, zipf, rng state), so a fixed
// seed replays the identical workload. Every op consumes the same
// number of draws regardless of kind, keeping the stream aligned —
// changing one op's parameters never reshuffles the rest of the plan.
func BuildPlan(n int, mix *Mix, z *Zipf, rng *Rand) []Op {
	ops := make([]Op, n)
	for i := range ops {
		kind := mix.pick(rng.Float64())
		key := z.Pick(rng.Float64())
		skill := 0.05 + 0.95*rng.Float64()
		ops[i] = Op{Seq: i, Kind: kind, Key: key, Skill: skill}
	}
	return ops
}
