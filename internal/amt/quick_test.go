package amt

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"peerlearn/internal/core"
	"peerlearn/internal/dygroups"
)

// deploymentCase is a random valid deployment configuration for
// property-based testing; it implements quick.Generator.
type deploymentCase struct {
	Workers   int
	GroupSize int
	Rounds    int
	Rate      float64
	Mode      core.Mode
	Noise     float64
	Seed      int64
}

// Generate implements quick.Generator.
func (deploymentCase) Generate(rng *rand.Rand, size int) reflect.Value {
	groupSize := 2 + rng.Intn(4)
	groups := 1 + rng.Intn(5)
	return reflect.ValueOf(deploymentCase{
		Workers:   groupSize*groups + rng.Intn(groupSize), // often indivisible
		GroupSize: groupSize,
		Rounds:    1 + rng.Intn(4),
		Rate:      0.1 + 0.8*rng.Float64(),
		Mode:      core.Mode(rng.Intn(2)),
		Noise:     0.1 * rng.Float64(),
		Seed:      rng.Int63(),
	})
}

// TestQuickDeploymentInvariants drives random deployments and checks
// the platform's structural invariants.
func TestQuickDeploymentInvariants(t *testing.T) {
	bank := DefaultBank()
	property := func(c deploymentCase) bool {
		rng := rand.New(rand.NewSource(c.Seed))
		pool, err := NewWorkerPool(rng, bank, c.Workers, 10, 0.2, 0.9)
		if err != nil {
			return false
		}
		cfg := Config{
			GroupSize: c.GroupSize,
			Rate:      c.Rate,
			Mode:      c.Mode,
			Rounds:    c.Rounds,
			Questions: 10,
			Noise:     c.Noise,
			Retention: DefaultRetention,
		}
		var policy core.Grouper = dygroups.NewStar()
		if c.Mode == core.Clique {
			policy = dygroups.NewClique()
		}
		dep, err := RunDeployment(cfg, pool, policy, bank, rng)
		if err != nil {
			return false
		}
		// 1. Round structure: entering counts never increase; the
		// participated count divides by the group size and fits the
		// entrants.
		prevEntering := c.Workers
		for _, rr := range dep.Rounds {
			if rr.Entering > prevEntering {
				return false
			}
			prevEntering = rr.Retained
			if rr.Participated%c.GroupSize != 0 || rr.Participated > rr.Entering {
				return false
			}
			if rr.LatentGain < 0 {
				return false
			}
			if rr.Retained > rr.Entering {
				return false
			}
		}
		// 2. Worker state: estimates in (0, 1], latents below the cap,
		// and latent skills never decreased from their floor.
		for _, w := range pool {
			if w.Estimated <= 0 || w.Estimated > 1 {
				return false
			}
			if w.Latent > latentCeil+1e-12 || w.Latent < 0.2 {
				return false
			}
		}
		// 3. Score bookkeeping aligned with the pool.
		if len(dep.PreScores) != c.Workers || len(dep.PostScores) != c.Workers || len(dep.Completed) != c.Workers {
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
