package amt

import (
	"math"
	"math/rand"
	"testing"

	"peerlearn/internal/core"
	"peerlearn/internal/dygroups"
)

func testConfig() Config {
	return Config{
		GroupSize: 4,
		Rate:      0.5,
		Mode:      core.Star,
		Rounds:    3,
		Questions: 10,
		Noise:     0.05,
		Retention: DefaultRetention,
	}
}

func TestQuestionValidate(t *testing.T) {
	good := Question{ID: 1, Text: "q", Options: []string{"a", "b"}, Answer: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid question rejected: %v", err)
	}
	bad := []Question{
		{ID: 2, Text: "q", Options: []string{"a"}, Answer: 0},
		{ID: 3, Text: "q", Options: []string{"a", "b"}, Answer: 2},
		{ID: 4, Text: "q", Options: []string{"a", "b"}, Answer: -1},
		{ID: 5, Text: "", Options: []string{"a", "b"}, Answer: 0},
	}
	for _, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("invalid question %d accepted", q.ID)
		}
	}
}

func TestDefaultBank(t *testing.T) {
	b := DefaultBank()
	if b.Len() < 20 {
		t.Fatalf("bank has %d questions, want ≥ 20", b.Len())
	}
	rumors := 0
	for _, q := range covidQuestions {
		if q.Rumor {
			rumors++
		}
	}
	if rumors < 5 {
		t.Fatalf("bank has %d rumor questions, want a real mix", rumors)
	}
}

func TestNewBankErrors(t *testing.T) {
	if _, err := NewBank(nil); err == nil {
		t.Error("empty bank accepted")
	}
	if _, err := NewBank([]Question{{ID: 1, Text: "q", Options: []string{"a"}, Answer: 0}}); err == nil {
		t.Error("invalid question accepted")
	}
}

func TestBankSample(t *testing.T) {
	b := DefaultBank()
	rng := rand.New(rand.NewSource(1))
	qs := b.Sample(rng, 10)
	if len(qs) != 10 {
		t.Fatalf("sampled %d questions, want 10", len(qs))
	}
	seen := map[int]bool{}
	for _, q := range qs {
		if seen[q.ID] {
			t.Fatalf("duplicate question %d in sample", q.ID)
		}
		seen[q.ID] = true
	}
	// Oversampling returns the whole bank.
	if got := b.Sample(rng, b.Len()+100); len(got) != b.Len() {
		t.Fatalf("oversample returned %d questions", len(got))
	}
}

func TestWorkerAssess(t *testing.T) {
	bank := DefaultBank()
	rng := rand.New(rand.NewSource(2))
	w := &Worker{ID: 0, Latent: 0.7, Active: true}
	for i := 0; i < 50; i++ {
		score := w.Assess(rng, bank, 10)
		if score <= 0 || score > 1 {
			t.Fatalf("assessment score %v outside (0, 1]", score)
		}
		//peerlint:allow floateq — Estimated must hold the exact value Assess returned
		if w.Estimated != score {
			t.Fatal("Estimated not refreshed")
		}
	}
}

func TestWorkerAssessTracksLatent(t *testing.T) {
	// Across many assessments the mean estimate should approach the
	// latent skill (above the guessing floor).
	bank := DefaultBank()
	rng := rand.New(rand.NewSource(3))
	w := &Worker{ID: 0, Latent: 0.6, Active: true}
	var sum float64
	const reps = 3000
	for i := 0; i < reps; i++ {
		sum += w.Assess(rng, bank, 10)
	}
	if mean := sum / reps; math.Abs(mean-0.6) > 0.03 {
		t.Fatalf("mean assessment %v, want ≈ 0.6", mean)
	}
}

func TestNewWorkerPoolValidation(t *testing.T) {
	bank := DefaultBank()
	rng := rand.New(rand.NewSource(4))
	if _, err := NewWorkerPool(rng, bank, 0, 10, 0.2, 0.9); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := NewWorkerPool(rng, bank, 8, 10, 0.9, 0.2); err == nil {
		t.Error("inverted latent range accepted")
	}
	if _, err := NewWorkerPool(rng, bank, 8, 10, 0.2, 1.5); err == nil {
		t.Error("latent range above 1 accepted")
	}
	ws, err := NewWorkerPool(rng, bank, 8, 10, 0.2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 8 {
		t.Fatalf("pool size %d", len(ws))
	}
	for _, w := range ws {
		if !w.Active || w.Estimated <= 0 || w.Latent < 0.2 || w.Latent >= 0.9 {
			t.Fatalf("worker not properly initialized: %+v", w)
		}
	}
}

func TestSplitMatched(t *testing.T) {
	bank := DefaultBank()
	rng := rand.New(rand.NewSource(5))
	ws, err := NewWorkerPool(rng, bank, 64, 10, 0.2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	pops, err := SplitMatched(ws, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pops) != 2 || len(pops[0]) != 32 || len(pops[1]) != 32 {
		t.Fatalf("bad split shapes: %d populations", len(pops))
	}
	mean := func(ws []*Worker) float64 {
		var s float64
		for _, w := range ws {
			s += w.Estimated
		}
		return s / float64(len(ws))
	}
	if d := math.Abs(mean(pops[0]) - mean(pops[1])); d > 0.02 {
		t.Fatalf("population means differ by %v, want matched", d)
	}
}

func TestSplitMatchedErrors(t *testing.T) {
	ws := []*Worker{{}, {}, {}}
	if _, err := SplitMatched(ws, 2); err == nil {
		t.Error("indivisible split accepted")
	}
	if _, err := SplitMatched(ws, 0); err == nil {
		t.Error("zero parts accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.GroupSize = 1 },
		func(c *Config) { c.Rate = 0 },
		func(c *Config) { c.Rate = 1.2 },
		func(c *Config) { c.Mode = core.Mode(9) },
		func(c *Config) { c.Rounds = 0 },
		func(c *Config) { c.Questions = 0 },
		func(c *Config) { c.Noise = -0.1 },
	}
	for i, mutate := range mutations {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestStayProbClamps(t *testing.T) {
	m := RetentionModel{Base: 0.8, GainWeight: 2, TeacherBonus: 0.1, Floor: 0.5, Ceil: 0.95}
	if p := m.StayProb(&Worker{LastGain: 10}); p != 0.95 {
		t.Errorf("huge gain: p=%v, want ceil", p)
	}
	if p := m.StayProb(&Worker{LastGain: -10}); p != 0.5 {
		t.Errorf("negative gain: p=%v, want floor", p)
	}
	base := m.StayProb(&Worker{LastGain: 0})
	teacher := m.StayProb(&Worker{LastGain: 0, WasTeacher: true})
	if teacher <= base {
		t.Errorf("teacher bonus missing: %v vs %v", teacher, base)
	}
}

func TestRunDeploymentBasics(t *testing.T) {
	bank := DefaultBank()
	rng := rand.New(rand.NewSource(6))
	ws, err := NewWorkerPool(rng, bank, 32, 10, 0.2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDeployment(testConfig(), ws, dygroups.NewStar(), bank, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "DyGroups-Star" {
		t.Errorf("policy = %q", res.Policy)
	}
	if len(res.Rounds) == 0 || len(res.Rounds) > 3 {
		t.Fatalf("recorded %d rounds", len(res.Rounds))
	}
	prevRetained := 32
	for i, rr := range res.Rounds {
		if rr.Round != i+1 {
			t.Errorf("round %d has index %d", i, rr.Round)
		}
		if rr.Participated%4 != 0 || rr.Participated > rr.Entering {
			t.Errorf("round %d: participated %d of %d", i, rr.Participated, rr.Entering)
		}
		if rr.Retained > prevRetained {
			t.Errorf("round %d: retention increased %d → %d", i, prevRetained, rr.Retained)
		}
		prevRetained = rr.Retained
		if rr.LatentGain < 0 {
			t.Errorf("round %d: negative latent gain %v", i, rr.LatentGain)
		}
	}
	if len(res.PreScores) != 32 || len(res.PostScores) != 32 {
		t.Fatalf("pre/post score shapes: %d/%d", len(res.PreScores), len(res.PostScores))
	}
}

func TestRunDeploymentValidation(t *testing.T) {
	bank := DefaultBank()
	rng := rand.New(rand.NewSource(7))
	ws, _ := NewWorkerPool(rng, bank, 8, 10, 0.2, 0.9)
	bad := testConfig()
	bad.Rate = 0
	if _, err := RunDeployment(bad, ws, dygroups.NewStar(), bank, rng); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := RunDeployment(testConfig(), ws, nil, bank, rng); err == nil {
		t.Error("nil policy accepted")
	}
	few := ws[:2]
	if _, err := RunDeployment(testConfig(), few, dygroups.NewStar(), bank, rng); err == nil {
		t.Error("too few workers accepted")
	}
}

func TestInteractRaisesLatentSkills(t *testing.T) {
	cfg := testConfig()
	cfg.Noise = 0
	ws := []*Worker{
		{ID: 0, Latent: 0.9, Active: true},
		{ID: 1, Latent: 0.5, Active: true},
		{ID: 2, Latent: 0.3, Active: true},
	}
	rng := rand.New(rand.NewSource(8))
	total := interact(cfg, ws, []int{0, 1, 2}, rng)
	// Star with r = 0.5: 0.5→0.7 and 0.3→0.6, total 0.5 (the paper's
	// 2-person arithmetic).
	if math.Abs(total-0.5) > 1e-9 {
		t.Fatalf("latent gain %v, want 0.5", total)
	}
	if ws[0].Latent != 0.9 || !ws[0].WasTeacher {
		t.Errorf("teacher state wrong: %+v", ws[0])
	}
	if math.Abs(ws[1].Latent-0.7) > 1e-9 || math.Abs(ws[2].Latent-0.6) > 1e-9 {
		t.Errorf("learner latents: %v, %v", ws[1].Latent, ws[2].Latent)
	}
}

func TestInteractCliqueMode(t *testing.T) {
	cfg := testConfig()
	cfg.Noise = 0
	cfg.Mode = core.Clique
	ws := []*Worker{
		{ID: 0, Latent: 0.9, Active: true},
		{ID: 1, Latent: 0.5, Active: true},
		{ID: 2, Latent: 0.3, Active: true},
	}
	rng := rand.New(rand.NewSource(9))
	total := interact(cfg, ws, []int{0, 1, 2}, rng)
	// Clique with r = 0.5 on {0.9, 0.5, 0.3}: gains 0.2 and 0.2 → 0.4.
	if math.Abs(total-0.4) > 1e-9 {
		t.Fatalf("latent gain %v, want 0.4", total)
	}
	if math.Abs(ws[2].Latent-0.5) > 1e-9 {
		t.Errorf("bottom learner latent %v, want 0.5", ws[2].Latent)
	}
}

func TestLatentCapped(t *testing.T) {
	w := &Worker{Latent: 0.97}
	w.applyLatentGain(0.5)
	if w.Latent > latentCeil {
		t.Fatalf("latent %v exceeds ceiling", w.Latent)
	}
}

func TestRunExperimentShapes(t *testing.T) {
	spec := Experiment1Spec(3, 11)
	res, err := RunExperiment(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series count %d", len(res.Series))
	}
	if res.Series[0].Policy != "DyGroups" {
		t.Errorf("first series %q, want DyGroups", res.Series[0].Policy)
	}
	for _, s := range res.Series {
		if len(s.GainPerRound) != 3 || len(s.RetentionPerRound) != 3 {
			t.Fatalf("series %s shapes wrong", s.Policy)
		}
		if len(s.TotalGainPerTrial) != 3 {
			t.Fatalf("series %s has %d trials", s.Policy, len(s.TotalGainPerTrial))
		}
	}
	if len(res.ObservationII) != 1 {
		t.Fatalf("observation II count %d", len(res.ObservationII))
	}
	// Peer learning must raise skills (Observation I direction).
	if res.ObservationI.MeanA <= res.ObservationI.MeanB {
		t.Errorf("post mean %v not above pre mean %v", res.ObservationI.MeanA, res.ObservationI.MeanB)
	}
}

func TestRunExperimentValidation(t *testing.T) {
	spec := Experiment1Spec(0, 1)
	if _, err := RunExperiment(spec); err == nil {
		t.Error("zero trials accepted")
	}
	spec = Experiment1Spec(2, 1)
	spec.Policies = nil
	if _, err := RunExperiment(spec); err == nil {
		t.Error("no policies accepted")
	}
	spec = Experiment1Spec(2, 1)
	spec.Workers = 63
	if _, err := RunExperiment(spec); err == nil {
		t.Error("indivisible worker count accepted")
	}
}

func TestExperiment2Spec(t *testing.T) {
	spec := Experiment2Spec(5, 9)
	if spec.Workers != 128 || len(spec.Policies) != 4 || spec.Deployment.Rounds != 2 {
		t.Fatalf("Experiment-2 spec wrong: %+v", spec)
	}
}

func TestRetentionGainCorrelation(t *testing.T) {
	// Hand-built deployments: workers with larger improvement complete,
	// smaller improvement drop → strongly positive correlation.
	dep := &DeploymentResult{
		PreScores:  []float64{0.5, 0.5, 0.5, 0.5},
		PostScores: []float64{0.9, 0.8, 0.55, 0.52},
		Completed:  []bool{true, true, false, false},
	}
	rho, err := RetentionGainCorrelation(dep)
	if err != nil {
		t.Fatal(err)
	}
	if rho <= 0.5 {
		t.Fatalf("correlation %v, want strongly positive", rho)
	}
	if _, err := RetentionGainCorrelation(nil); err == nil {
		t.Error("nil deployment accepted")
	}
	bad := &DeploymentResult{PreScores: []float64{1}, PostScores: []float64{1}}
	if _, err := RetentionGainCorrelation(bad); err == nil {
		t.Error("missing completion flags accepted")
	}
}

func TestDeploymentRecordsCompletionFlags(t *testing.T) {
	bank := DefaultBank()
	rng := rand.New(rand.NewSource(31))
	ws, err := NewWorkerPool(rng, bank, 32, 10, 0.2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := RunDeployment(testConfig(), ws, dygroups.NewStar(), bank, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.Completed) != 32 {
		t.Fatalf("completion flags %d, want 32", len(dep.Completed))
	}
	completed := 0
	for _, c := range dep.Completed {
		if c {
			completed++
		}
	}
	if lastRetained := dep.Rounds[len(dep.Rounds)-1].Retained; completed != lastRetained {
		t.Fatalf("completed %d != last-round retained %d", completed, lastRetained)
	}
}

func TestObservationIIFavorsDyGroupsOnAverage(t *testing.T) {
	// With enough trials, DyGroups' mean total gain should exceed
	// K-Means' (the paper's Observation II). This is a statistical
	// property; 20 trials with a fixed seed keeps it deterministic.
	res, err := RunExperiment(Experiment1Spec(20, 13))
	if err != nil {
		t.Fatal(err)
	}
	tt := res.ObservationII["K-Means"]
	if tt.MeanA <= tt.MeanB {
		t.Fatalf("DyGroups mean gain %v not above K-Means' %v", tt.MeanA, tt.MeanB)
	}
}
