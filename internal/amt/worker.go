package amt

import (
	"fmt"
	"math/rand"
	"slices"
)

// guessRate is the probability of answering a 4-option multiple-choice
// question correctly by pure guessing; it floors every worker's
// per-question accuracy.
const guessRate = 0.25

// latentCeil caps the per-question accuracy below 1 so assessments stay
// noisy even for experts, as real tests are.
const latentCeil = 0.98

// Worker is one simulated AMT participant.
type Worker struct {
	// ID is stable across the experiment.
	ID int
	// Latent is the true skill in (0, 1): the probability of knowing a
	// fact. It is hidden from the grouping policies.
	Latent float64
	// Estimated is the skill estimate from the most recent assessment
	// (correct answers / number of questions), the quantity the paper's
	// algorithms operate on.
	Estimated float64
	// Active reports whether the worker is still participating;
	// retention drops set it to false.
	Active bool
	// LastGain is the latent skill gained in the most recent interaction
	// round; it drives the retention model.
	LastGain float64
	// WasTeacher reports whether the worker was the most skilled member
	// of its group in the most recent round.
	WasTeacher bool
}

// answerProb returns the worker's per-question probability of a correct
// answer: the latent skill floored at the guessing rate and capped below
// certainty.
func (w *Worker) answerProb() float64 {
	p := w.Latent
	if p < guessRate {
		p = guessRate
	}
	if p > latentCeil {
		p = latentCeil
	}
	return p
}

// Assess administers an n-question assessment and refreshes the worker's
// estimated skill with the score correct/n — the paper's estimator.
func (w *Worker) Assess(rng *rand.Rand, bank *Bank, n int) float64 {
	qs := bank.Sample(rng, n)
	correct := 0
	for range qs {
		if rng.Float64() < w.answerProb() {
			correct++
		}
	}
	// The paper's skill values are positive; a zero score is recorded as
	// a small positive skill so the model's positivity requirement holds.
	score := float64(correct) / float64(len(qs))
	if score == 0 {
		score = 0.5 / float64(len(qs))
	}
	w.Estimated = score
	return score
}

// NewWorkerPool creates n workers with latent skills drawn uniformly
// from [lo, hi), assessed once so their estimates are populated
// (PRE-QUALIFICATION in the paper's protocol).
func NewWorkerPool(rng *rand.Rand, bank *Bank, n, questions int, lo, hi float64) ([]*Worker, error) {
	if n <= 0 {
		return nil, fmt.Errorf("amt: need a positive worker count, got %d", n)
	}
	if !(lo >= 0 && hi > lo && hi <= 1) {
		return nil, fmt.Errorf("amt: latent skill range [%v,%v) must sit inside [0,1]", lo, hi)
	}
	ws := make([]*Worker, n)
	for i := range ws {
		w := &Worker{
			ID:     i,
			Latent: lo + (hi-lo)*rng.Float64(),
			Active: true,
		}
		w.Assess(rng, bank, questions)
		ws[i] = w
	}
	return ws, nil
}

// SplitMatched splits workers into `parts` populations of equal size
// with closely matched skill distributions, mirroring the paper's
// constraint that the populations "have very similar skill distributions
// and in particular the same average skill". It sorts by estimated skill
// and deals serpentine-style across the populations. The worker count
// must be divisible by parts.
func SplitMatched(workers []*Worker, parts int) ([][]*Worker, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("amt: need a positive population count, got %d", parts)
	}
	if len(workers)%parts != 0 {
		return nil, fmt.Errorf("amt: %d workers cannot split into %d equal populations", len(workers), parts)
	}
	sorted := append([]*Worker(nil), workers...)
	slices.SortStableFunc(sorted, func(a, b *Worker) int {
		if a.Estimated > b.Estimated {
			return -1
		}
		if a.Estimated < b.Estimated {
			return 1
		}
		return 0
	})
	pops := make([][]*Worker, parts)
	for i := range pops {
		pops[i] = make([]*Worker, 0, len(workers)/parts)
	}
	for i, w := range sorted {
		pass, pos := i/parts, i%parts
		if pass%2 == 1 {
			pos = parts - 1 - pos
		}
		pops[pos] = append(pops[pos], w)
	}
	return pops, nil
}
