package amt

import (
	"testing"
	"time"
)

func TestTimingModelValidate(t *testing.T) {
	if err := DefaultTiming.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*TimingModel){
		func(m *TimingModel) { m.Window = 0 },
		func(m *TimingModel) { m.WorkerBudget = 0 },
		func(m *TimingModel) { m.AssessmentMin = 0 },
		func(m *TimingModel) { m.AssessmentMax = m.AssessmentMin - 1 },
		func(m *TimingModel) { m.DiscussionMax = m.DiscussionMin - 1 },
		func(m *TimingModel) { m.ArrivalSpread = m.Window },
	}
	for i, mutate := range mutations {
		m := DefaultTiming
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSimulateTimingPaperClaims(t *testing.T) {
	// The paper: the one-day window suffices per round and workers need
	// at most about an hour. With the default model those operational
	// claims must hold for an Experiment-1-shaped deployment.
	report, err := DefaultTiming.SimulateTiming([]int{32, 32, 32}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rounds) != 3 {
		t.Fatalf("rounds %d", len(report.Rounds))
	}
	if report.AnyMissedWindow {
		t.Error("a round exceeded the 24h window under the paper's parameters")
	}
	if report.AnyOverBudget {
		t.Errorf("a worker exceeded the 1h budget (max engaged %v)", report.MaxWorkerTime)
	}
	if report.MaxWorkerTime <= 0 || report.MaxWorkerTime > time.Hour {
		t.Errorf("max worker time %v outside (0, 1h]", report.MaxWorkerTime)
	}
	for _, rt := range report.Rounds {
		if rt.Span <= 0 || rt.Span > DefaultTiming.Window {
			t.Errorf("round %d span %v outside (0, window]", rt.Round, rt.Span)
		}
	}
}

func TestSimulateTimingDetectsTightBudget(t *testing.T) {
	m := DefaultTiming
	m.WorkerBudget = 10 * time.Minute // tighter than any plausible engagement
	report, err := m.SimulateTiming([]int{16}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !report.AnyOverBudget {
		t.Error("10-minute budget not flagged")
	}
}

func TestSimulateTimingDetectsShortWindow(t *testing.T) {
	m := DefaultTiming
	m.Window = 2 * time.Hour
	m.ArrivalSpread = 110 * time.Minute
	report, err := m.SimulateTiming([]int{16}, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !report.AnyMissedWindow {
		t.Error("2-hour window with late arrivals not flagged")
	}
}

func TestSimulateTimingErrors(t *testing.T) {
	if _, err := DefaultTiming.SimulateTiming([]int{30}, 4, 1); err == nil {
		t.Error("non-divisible participation accepted")
	}
	if _, err := DefaultTiming.SimulateTiming([]int{32}, 1, 1); err == nil {
		t.Error("group size 1 accepted")
	}
	bad := DefaultTiming
	bad.Window = 0
	if _, err := bad.SimulateTiming([]int{32}, 4, 1); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestSimulateTimingDeterministic(t *testing.T) {
	a, err := DefaultTiming.SimulateTiming([]int{32, 28}, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultTiming.SimulateTiming([]int{32, 28}, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rounds {
		if a.Rounds[i] != b.Rounds[i] {
			t.Fatal("same seed produced different schedules")
		}
	}
}
