package amt

import (
	"fmt"
	"math/rand"
)

// Question is one multiple-choice item of a HIT. Rumor marks questions
// that target a piece of misinformation rather than a plain fact; the
// paper's deployments mixed both.
type Question struct {
	ID      int
	Text    string
	Options []string
	// Answer is the index into Options of the correct choice.
	Answer int
	Rumor  bool
}

// Validate reports whether the question is well-formed.
func (q Question) Validate() error {
	if len(q.Options) < 2 {
		return fmt.Errorf("amt: question %d has %d options, need ≥2", q.ID, len(q.Options))
	}
	if q.Answer < 0 || q.Answer >= len(q.Options) {
		return fmt.Errorf("amt: question %d has answer index %d out of range", q.ID, q.Answer)
	}
	if q.Text == "" {
		return fmt.Errorf("amt: question %d has empty text", q.ID)
	}
	return nil
}

// Bank is a pool of questions from which assessments are sampled.
type Bank struct {
	questions []Question
}

// NewBank builds a bank from the given questions, validating each.
func NewBank(qs []Question) (*Bank, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("amt: empty question bank")
	}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			return nil, err
		}
	}
	return &Bank{questions: append([]Question(nil), qs...)}, nil
}

// Len returns the number of questions in the bank.
func (b *Bank) Len() int { return len(b.questions) }

// Sample draws n distinct questions uniformly at random; if n exceeds
// the bank size the whole bank is returned in random order.
func (b *Bank) Sample(rng *rand.Rand, n int) []Question {
	if n > len(b.questions) {
		n = len(b.questions)
	}
	perm := rng.Perm(len(b.questions))
	out := make([]Question, n)
	for i := 0; i < n; i++ {
		out[i] = b.questions[perm[i]]
	}
	return out
}

// defaultBank validates the embedded question data once at package
// initialization, so a malformed edit to covidQuestions fails at
// startup instead of mid-deployment. A Bank is immutable after
// construction, making the shared instance safe.
var defaultBank = func() *Bank {
	b, err := NewBank(covidQuestions)
	if err != nil {
		panic("amt: built-in question bank invalid: " + err.Error())
	}
	return b
}()

// DefaultBank returns the built-in COVID-19 fact/rumor question bank
// used by the simulated deployments. The first two items are the paper's
// own sample questions (Section V-A, footnote 7).
func DefaultBank() *Bank { return defaultBank }

// covidQuestions is the built-in HIT content: public-health facts and
// widely circulated rumors about COVID-19, in the paper's four-option
// multiple-choice format.
var covidQuestions = []Question{
	{ID: 1, Text: "What is the longest incubation time of COVID-19 in the record?",
		Options: []string{"14 days", "19 days", "20 days", "More than 20 days"}, Answer: 3},
	{ID: 2, Text: "Which action will help to prevent COVID-19?",
		Options: []string{"Wash your hands regularly and thoroughly", "Taking a hot bath", "Drinking alcohol", "None of the above"}, Answer: 0},
	{ID: 3, Text: "Which kind of pathogen causes COVID-19?",
		Options: []string{"A bacterium", "A coronavirus", "A parasite", "A fungus"}, Answer: 1},
	{ID: 4, Text: "Can people without symptoms transmit COVID-19?",
		Options: []string{"No, never", "Yes, asymptomatic transmission occurs", "Only children can", "Only after a fever starts"}, Answer: 1, Rumor: true},
	{ID: 5, Text: "Does cold weather kill the virus that causes COVID-19?",
		Options: []string{"Yes, below 0°C", "Yes, below 10°C", "No, temperature does not eliminate it in the body", "Only with snow"}, Answer: 2, Rumor: true},
	{ID: 6, Text: "Which surface disinfectant is effective against the virus?",
		Options: []string{"Plain water", "Diluted bleach solution", "Sugar solution", "Milk"}, Answer: 1},
	{ID: 7, Text: "What is the typical incubation period of COVID-19?",
		Options: []string{"1-2 hours", "2-14 days", "30-60 days", "6 months"}, Answer: 1},
	{ID: 8, Text: "Do antibiotics treat COVID-19?",
		Options: []string{"Yes, any antibiotic", "Yes, but only penicillin", "No, antibiotics do not work against viruses", "Only combined with vitamins"}, Answer: 2, Rumor: true},
	{ID: 9, Text: "How far do respiratory droplets typically travel when someone coughs?",
		Options: []string{"About 1-2 meters", "Exactly 10 meters", "They do not travel", "Over 100 meters"}, Answer: 0},
	{ID: 10, Text: "Does eating garlic prevent infection with COVID-19?",
		Options: []string{"Yes, one clove a day", "Yes, if eaten raw", "There is no evidence that garlic prevents it", "Only with ginger"}, Answer: 2, Rumor: true},
	{ID: 11, Text: "Which group is at highest risk of severe illness?",
		Options: []string{"Teenagers", "Older adults and people with underlying conditions", "Professional athletes", "Left-handed people"}, Answer: 1},
	{ID: 12, Text: "Can 5G mobile networks spread COVID-19?",
		Options: []string{"Yes, through radio waves", "Yes, near antennas", "No, viruses cannot travel on radio waves", "Only at night"}, Answer: 2, Rumor: true},
	{ID: 13, Text: "What is the main transmission route of COVID-19?",
		Options: []string{"Respiratory droplets and close contact", "Mosquito bites", "Drinking water", "Sunlight"}, Answer: 0},
	{ID: 14, Text: "Does spraying alcohol all over your body kill viruses that have entered it?",
		Options: []string{"Yes, 70% alcohol", "Yes, any spirit", "No, it cannot reach the virus inside the body", "Only on the first day"}, Answer: 2, Rumor: true},
	{ID: 15, Text: "Which symptom combination is most characteristic of COVID-19?",
		Options: []string{"Fever, dry cough, fatigue", "Broken bones", "Hair loss only", "Improved sense of smell"}, Answer: 0},
	{ID: 16, Text: "Are hand dryers effective in killing the virus?",
		Options: []string{"Yes, 30 seconds of hot air", "No, hand dryers alone do not kill it", "Only industrial dryers", "Yes, combined with cold air"}, Answer: 1, Rumor: true},
	{ID: 17, Text: "What does 'flattening the curve' refer to?",
		Options: []string{"Slowing the spread to avoid overwhelming hospitals", "Straightening fever charts", "A vaccination technique", "A breathing exercise"}, Answer: 0},
	{ID: 18, Text: "Can ultraviolet (UV) lamps be used to disinfect hands safely?",
		Options: []string{"Yes, for 10 minutes", "No, UV radiation irritates the skin and should not be used on the body", "Only UVB lamps", "Yes, through gloves"}, Answer: 1, Rumor: true},
	{ID: 19, Text: "How long can the virus survive on some surfaces?",
		Options: []string{"It dies instantly", "Up to several days depending on the surface", "At least one year", "Surfaces cannot carry viruses"}, Answer: 1},
	{ID: 20, Text: "Does adding pepper to your meals prevent COVID-19?",
		Options: []string{"Yes, hot pepper works", "Yes, black pepper only", "No, pepper does not prevent it", "Only in soup"}, Answer: 2, Rumor: true},
	{ID: 21, Text: "What is the purpose of quarantine after exposure?",
		Options: []string{"To separate exposed people during the incubation period", "To cure the disease", "To build muscle", "It has no purpose"}, Answer: 0},
	{ID: 22, Text: "Are thermal scanners able to detect people who are infected but have no fever?",
		Options: []string{"Yes, always", "No, they only detect elevated temperature", "Only in airports", "Yes, with infrared glasses"}, Answer: 1, Rumor: true},
	{ID: 23, Text: "Which of these is a recommended mask practice?",
		Options: []string{"Cover both nose and mouth", "Cover only the mouth", "Wear it on the chin", "Share masks with family"}, Answer: 0},
	{ID: 24, Text: "Can drinking methanol or ethanol cure COVID-19?",
		Options: []string{"Yes, in small doses", "Yes, methanol only", "No, drinking them is dangerous and does not cure the disease", "Only mixed with juice"}, Answer: 2, Rumor: true},
}
