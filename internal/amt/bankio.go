package amt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// bankFile is the JSON schema of an external question bank.
type bankFile struct {
	Questions []Question `json:"questions"`
}

// LoadBankJSON reads a question bank from JSON of the form
// {"questions": [{"id":1, "text":..., "options":[...], "answer":0,
// "rumor":false}, ...]} and validates every question.
func LoadBankJSON(r io.Reader) (*Bank, error) {
	var f bankFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("amt: decoding question bank: %w", err)
	}
	return NewBank(f.Questions)
}

// LoadBankFile reads a question bank from a JSON file.
func LoadBankFile(path string) (*Bank, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("amt: opening question bank: %w", err)
	}
	defer f.Close()
	return LoadBankJSON(f)
}

// WriteJSON serializes the bank in the LoadBankJSON schema, so the
// built-in bank can be exported, edited, and reloaded.
func (b *Bank) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(bankFile{Questions: b.questions})
}

// MarshalJSON and UnmarshalJSON give Question a stable JSON form with
// lower-case keys.
func (q Question) MarshalJSON() ([]byte, error) {
	return json.Marshal(questionJSON{
		ID: q.ID, Text: q.Text, Options: q.Options, Answer: q.Answer, Rumor: q.Rumor,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (q *Question) UnmarshalJSON(data []byte) error {
	var j questionJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*q = Question{ID: j.ID, Text: j.Text, Options: j.Options, Answer: j.Answer, Rumor: j.Rumor}
	return nil
}

type questionJSON struct {
	ID      int      `json:"id"`
	Text    string   `json:"text"`
	Options []string `json:"options"`
	Answer  int      `json:"answer"`
	Rumor   bool     `json:"rumor,omitempty"`
}
