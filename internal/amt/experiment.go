package amt

import (
	"fmt"
	"math/rand"

	"peerlearn/internal/baselines"
	"peerlearn/internal/core"
	"peerlearn/internal/dygroups"
	"peerlearn/internal/stats"
)

// PolicyFactory creates a fresh grouping policy per trial; policies with
// internal randomness (K-Means, Random-Assignment) need a new stream
// each time.
type PolicyFactory struct {
	Name string
	New  func(seed int64) core.Grouper
}

// Standard policy factories for the human-subject experiments.
var (
	FactoryDyGroups   = PolicyFactory{Name: "DyGroups", New: func(int64) core.Grouper { return dygroups.NewStar() }}
	FactoryKMeans     = PolicyFactory{Name: "K-Means", New: func(seed int64) core.Grouper { return baselines.NewKMeans(seed) }}
	FactoryLPA        = PolicyFactory{Name: "LPA", New: func(int64) core.Grouper { return baselines.NewLPA() }}
	FactoryPercentile = PolicyFactory{Name: "Percentile-Partitions", New: func(int64) core.Grouper {
		p, err := baselines.NewPercentile(0.75)
		if err != nil {
			panic(err)
		}
		return p
	}}
)

// ExperimentSpec describes one of the paper's human-subject experiments:
// N workers split into matched populations, each following one policy.
type ExperimentSpec struct {
	// Name labels the experiment in reports.
	Name string
	// Workers is the total recruit count N.
	Workers int
	// Policies lists one factory per population; the population count is
	// len(Policies) and each population has Workers/len(Policies)
	// members.
	Policies []PolicyFactory
	// Deployment configures the per-population protocol.
	Deployment Config
	// Trials is the number of independent repetitions to average over
	// (one human deployment is one trial; simulation affords many).
	Trials int
	// Seed derives all randomness.
	Seed int64
	// LatentLo and LatentHi bound the initial latent skills.
	LatentLo, LatentHi float64
	// Bank supplies the assessment questions; nil uses DefaultBank.
	Bank *Bank
}

// Experiment1Spec reproduces Experiment-1 (Section V-A): N = 64, two
// populations of 32 following DyGroups and K-Means, r = 0.5, group size
// 4, α = 3 rounds.
func Experiment1Spec(trials int, seed int64) ExperimentSpec {
	return ExperimentSpec{
		Name:     "Experiment-1",
		Workers:  64,
		Policies: []PolicyFactory{FactoryDyGroups, FactoryKMeans},
		Deployment: Config{
			GroupSize: 4,
			Rate:      0.5,
			Mode:      core.Star,
			Rounds:    3,
			Questions: 10,
			Noise:     0.05,
			Retention: DefaultRetention,
		},
		Trials:   trials,
		Seed:     seed,
		LatentLo: 0.2,
		LatentHi: 0.9,
	}
}

// Experiment2Spec reproduces Experiment-2: N = 128, four populations of
// 32 following DyGroups, K-Means, LPA and Percentile-Partitions, α = 2
// rounds.
func Experiment2Spec(trials int, seed int64) ExperimentSpec {
	spec := Experiment1Spec(trials, seed)
	spec.Name = "Experiment-2"
	spec.Workers = 128
	spec.Policies = []PolicyFactory{FactoryDyGroups, FactoryKMeans, FactoryLPA, FactoryPercentile}
	spec.Deployment.Rounds = 2
	return spec
}

// PolicySeries aggregates one policy's population across trials.
type PolicySeries struct {
	// Policy is the factory name.
	Policy string
	// PreMean is the mean pre-qualification estimated skill.
	PreMean float64
	// GainPerRound[t] is the mean assessed learning gain in round t+1
	// across trials (Figures 1 and 4a); GainCI holds the half-width of
	// its 95% confidence interval.
	GainPerRound, GainCI []float64
	// MeanSkillPerRound[t] is the mean post-assessment skill per round.
	MeanSkillPerRound []float64
	// RetentionPerRound[t] is the mean fraction of the population still
	// active after round t+1 (Figures 3 and 4b).
	RetentionPerRound []float64
	// TotalGainPerTrial holds each trial's total assessed gain, for
	// significance testing.
	TotalGainPerTrial []float64
	// MeanCost and MeanCostPerGain price the deployments under
	// DefaultPayment (the paper's $5 completion bonus), averaged over
	// trials.
	MeanCost, MeanCostPerGain float64
	// RetentionGainCorr is the Spearman correlation between per-worker
	// improvement and study completion, pooled over trials — the
	// mechanism behind Observation III.
	RetentionGainCorr float64
	// PrePost holds pooled (pre, post) estimated skills across trials
	// for the paired Observation-I test.
	PrePre, PrePost []float64
}

// ExperimentResult is the aggregated outcome of an ExperimentSpec.
type ExperimentResult struct {
	// Name echoes the spec.
	Name string
	// Rounds is the deployment's round count.
	Rounds int
	// Series holds one aggregate per policy, in spec order (DyGroups
	// first by convention).
	Series []PolicySeries
	// ObservationI is the paired pre/post t-test pooled over every
	// population and trial: do skills improve through peer interaction?
	ObservationI stats.TTestResult
	// ObservationII maps each baseline name to the Welch t-test of
	// DyGroups' per-trial total gain against that baseline's.
	ObservationII map[string]stats.TTestResult
}

// RunExperiment executes the spec: per trial it recruits a fresh worker
// pool, pre-qualifies, splits into matched populations, and runs one
// deployment per policy; per-round metrics are averaged across trials
// and the paper's two statistical observations are tested.
func RunExperiment(spec ExperimentSpec) (*ExperimentResult, error) {
	if spec.Trials < 1 {
		return nil, fmt.Errorf("amt: need ≥1 trial, got %d", spec.Trials)
	}
	if len(spec.Policies) == 0 {
		return nil, fmt.Errorf("amt: no policies")
	}
	if spec.Workers%len(spec.Policies) != 0 {
		return nil, fmt.Errorf("amt: %d workers cannot split into %d populations", spec.Workers, len(spec.Policies))
	}
	if err := spec.Deployment.Validate(); err != nil {
		return nil, err
	}
	bank := spec.Bank
	if bank == nil {
		bank = DefaultBank()
	}
	nPolicies := len(spec.Policies)
	rounds := spec.Deployment.Rounds

	type accum struct {
		preMean      float64
		gainSum      []float64
		gainAll      [][]float64 // per round, per trial, for CIs
		skillSum     []float64
		retainedFrac []float64
		count        []float64 // trials contributing to round t
		totals       []float64
		prePre       []float64
		prePost      []float64
		cost         float64
		costPerGain  float64
		deployments  []*DeploymentResult
	}
	accums := make([]accum, nPolicies)
	for i := range accums {
		accums[i] = accum{
			gainSum:      make([]float64, rounds),
			gainAll:      make([][]float64, rounds),
			skillSum:     make([]float64, rounds),
			retainedFrac: make([]float64, rounds),
			count:        make([]float64, rounds),
		}
	}

	var pooledPre, pooledPost []float64
	for trial := 0; trial < spec.Trials; trial++ {
		rng := rand.New(rand.NewSource(spec.Seed + int64(trial)*7919))
		pool, err := NewWorkerPool(rng, bank, spec.Workers, spec.Deployment.Questions, spec.LatentLo, spec.LatentHi)
		if err != nil {
			return nil, err
		}
		pops, err := SplitMatched(pool, nPolicies)
		if err != nil {
			return nil, err
		}
		for pi, factory := range spec.Policies {
			policy := factory.New(spec.Seed + int64(trial)*104729 + int64(pi))
			dep, err := RunDeployment(spec.Deployment, pops[pi], policy, bank, rng)
			if err != nil {
				return nil, err
			}
			a := &accums[pi]
			a.preMean += dep.PreMean
			a.totals = append(a.totals, dep.TotalAssessedGain)
			popSize := float64(len(pops[pi]))
			for _, rr := range dep.Rounds {
				t := rr.Round - 1
				a.gainSum[t] += rr.AssessedGain
				a.gainAll[t] = append(a.gainAll[t], rr.AssessedGain)
				a.skillSum[t] += rr.MeanEstimated
				a.retainedFrac[t] += float64(rr.Retained) / popSize
				a.count[t]++
			}
			a.prePre = append(a.prePre, dep.PreScores...)
			a.prePost = append(a.prePost, dep.PostScores...)
			pooledPre = append(pooledPre, dep.PreScores...)
			pooledPost = append(pooledPost, dep.PostScores...)
			costReport, err := DefaultPayment.Cost(dep)
			if err != nil {
				return nil, err
			}
			a.cost += costReport.Total / float64(spec.Trials)
			a.costPerGain += costReport.PerGain / float64(spec.Trials)
			a.deployments = append(a.deployments, dep)
		}
	}

	res := &ExperimentResult{Name: spec.Name, Rounds: rounds, ObservationII: make(map[string]stats.TTestResult)}
	for pi, factory := range spec.Policies {
		a := &accums[pi]
		ps := PolicySeries{
			Policy:            factory.Name,
			PreMean:           a.preMean / float64(spec.Trials),
			GainPerRound:      make([]float64, rounds),
			GainCI:            make([]float64, rounds),
			MeanSkillPerRound: make([]float64, rounds),
			RetentionPerRound: make([]float64, rounds),
			TotalGainPerTrial: a.totals,
			MeanCost:          a.cost,
			MeanCostPerGain:   a.costPerGain,
			PrePre:            a.prePre,
			PrePost:           a.prePost,
		}
		if corr, err := RetentionGainCorrelation(a.deployments...); err == nil {
			ps.RetentionGainCorr = corr
		}
		for t := 0; t < rounds; t++ {
			if a.count[t] == 0 {
				continue
			}
			ps.GainPerRound[t] = a.gainSum[t] / a.count[t]
			ps.MeanSkillPerRound[t] = a.skillSum[t] / a.count[t]
			ps.RetentionPerRound[t] = a.retainedFrac[t] / a.count[t]
			if len(a.gainAll[t]) >= 2 {
				ps.GainCI[t] = stats.ConfidenceInterval(a.gainAll[t], 0.95)
			}
		}
		res.Series = append(res.Series, ps)
	}

	obs1, err := stats.PairedT(pooledPre, pooledPost)
	if err != nil {
		return nil, fmt.Errorf("amt: observation-I test: %w", err)
	}
	res.ObservationI = obs1
	if spec.Trials >= 2 {
		dy := res.Series[0].TotalGainPerTrial
		for pi := 1; pi < nPolicies; pi++ {
			tt, err := stats.WelchT(dy, res.Series[pi].TotalGainPerTrial)
			if err != nil {
				return nil, fmt.Errorf("amt: observation-II test vs %s: %w", res.Series[pi].Policy, err)
			}
			res.ObservationII[res.Series[pi].Policy] = tt
		}
	}
	return res, nil
}
