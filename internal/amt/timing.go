package amt

import (
	"fmt"
	"math/rand"
	"time"
)

// TimingModel simulates the wall-clock side of a deployment, mirroring
// the paper's operational parameters: "Each deployment was accessible
// for 24 hours and 1 hour is allotted to each worker", and the authors'
// observation that "the one day time window is good enough for each
// round, and the workers do not need to spend more than one hour
// overall".
type TimingModel struct {
	// Window is how long each round's HIT stays open (24h in the
	// paper).
	Window time.Duration
	// WorkerBudget is the per-worker time allotment (1h in the paper).
	WorkerBudget time.Duration
	// AssessmentMin/Max bound the time a worker spends answering one
	// assessment HIT.
	AssessmentMin, AssessmentMax time.Duration
	// DiscussionMin/Max bound the time a group spends in peer
	// discussion per round.
	DiscussionMin, DiscussionMax time.Duration
	// ArrivalSpread is how late after the round opens a worker may
	// start (workers check AMT at different times of day).
	ArrivalSpread time.Duration
}

// DefaultTiming reflects the paper's deployment parameters with
// plausible task durations from its pilot description.
var DefaultTiming = TimingModel{
	Window:        24 * time.Hour,
	WorkerBudget:  time.Hour,
	AssessmentMin: 4 * time.Minute,
	AssessmentMax: 12 * time.Minute,
	DiscussionMin: 10 * time.Minute,
	DiscussionMax: 30 * time.Minute,
	ArrivalSpread: 18 * time.Hour,
}

// Validate reports whether the model is internally consistent.
func (m TimingModel) Validate() error {
	if m.Window <= 0 || m.WorkerBudget <= 0 {
		return fmt.Errorf("amt: window and worker budget must be positive")
	}
	if m.AssessmentMin <= 0 || m.AssessmentMax < m.AssessmentMin {
		return fmt.Errorf("amt: bad assessment duration range [%v, %v]", m.AssessmentMin, m.AssessmentMax)
	}
	if m.DiscussionMin <= 0 || m.DiscussionMax < m.DiscussionMin {
		return fmt.Errorf("amt: bad discussion duration range [%v, %v]", m.DiscussionMin, m.DiscussionMax)
	}
	if m.ArrivalSpread < 0 || m.ArrivalSpread >= m.Window {
		return fmt.Errorf("amt: arrival spread %v must lie inside the window %v", m.ArrivalSpread, m.Window)
	}
	return nil
}

// RoundTiming is the simulated wall-clock outcome of one round.
type RoundTiming struct {
	Round int
	// Span is the time from the round opening until the last group
	// finished.
	Span time.Duration
	// MaxWorkerTime is the longest any single worker was engaged
	// (assessment + discussion).
	MaxWorkerTime time.Duration
	// OverBudget counts workers whose engagement exceeded the
	// per-worker budget.
	OverBudget int
	// MissedWindow reports whether any group finished after the round's
	// window closed.
	MissedWindow bool
}

// TimingReport aggregates a deployment's rounds.
type TimingReport struct {
	Rounds []RoundTiming
	// MaxWorkerTime is the maximum over rounds.
	MaxWorkerTime time.Duration
	// AnyOverBudget and AnyMissedWindow flag violations of the paper's
	// operational assumptions anywhere in the deployment.
	AnyOverBudget, AnyMissedWindow bool
}

// SimulateTiming draws a wall-clock schedule for a deployment that ran
// the given per-round participation counts with the given group size.
// Each participant arrives at a random offset, spends an assessment
// duration, then its group discusses once all members have arrived (the
// group is gated by its slowest member) and re-assesses.
func (m TimingModel) SimulateTiming(participantsPerRound []int, groupSize int, seed int64) (*TimingReport, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if groupSize < 2 {
		return nil, fmt.Errorf("amt: group size %d", groupSize)
	}
	rng := rand.New(rand.NewSource(seed))
	report := &TimingReport{}
	for round, participants := range participantsPerRound {
		if participants%groupSize != 0 {
			return nil, fmt.Errorf("amt: round %d has %d participants for group size %d", round+1, participants, groupSize)
		}
		rt := RoundTiming{Round: round + 1}
		groups := participants / groupSize
		for g := 0; g < groups; g++ {
			var groupReady time.Duration // latest member arrival+assessment
			var discussion = m.durBetween(rng, m.DiscussionMin, m.DiscussionMax)
			for w := 0; w < groupSize; w++ {
				arrival := time.Duration(rng.Int63n(int64(m.ArrivalSpread) + 1))
				assess := m.durBetween(rng, m.AssessmentMin, m.AssessmentMax)
				post := m.durBetween(rng, m.AssessmentMin, m.AssessmentMax)
				if ready := arrival + assess; ready > groupReady {
					groupReady = ready
				}
				engaged := assess + discussion + post
				if engaged > rt.MaxWorkerTime {
					rt.MaxWorkerTime = engaged
				}
				if engaged > m.WorkerBudget {
					rt.OverBudget++
				}
			}
			// The group's post-assessments start after discussion; the
			// group finishes when its slowest post-assessment does.
			finish := groupReady + discussion + m.AssessmentMax
			if finish > rt.Span {
				rt.Span = finish
			}
		}
		if rt.Span > m.Window {
			rt.MissedWindow = true
			report.AnyMissedWindow = true
		}
		if rt.OverBudget > 0 {
			report.AnyOverBudget = true
		}
		if rt.MaxWorkerTime > report.MaxWorkerTime {
			report.MaxWorkerTime = rt.MaxWorkerTime
		}
		report.Rounds = append(report.Rounds, rt)
	}
	return report, nil
}

func (m TimingModel) durBetween(rng *rand.Rand, lo, hi time.Duration) time.Duration {
	if hi == lo {
		return lo
	}
	return lo + time.Duration(rng.Int63n(int64(hi-lo)+1))
}
