package amt

import (
	"fmt"
	"math/rand"

	"peerlearn/internal/core"
	"peerlearn/internal/stats"
)

// RetentionModel maps a worker's experience in a round to the
// probability of returning for the next one. The paper's Observation III
// notes that, under identical pay, DyGroups retained more workers and
// hypothesizes the rate of skill improvement as the cause; this model
// encodes exactly that mechanism.
type RetentionModel struct {
	// Base is the stay probability of a worker who gained nothing.
	Base float64
	// GainWeight converts a round's latent skill gain into extra stay
	// probability (stay += GainWeight · gain).
	GainWeight float64
	// TeacherBonus is extra stay probability for the most skilled member
	// of a group, who gains nothing by the model but enjoys the
	// teaching role.
	TeacherBonus float64
	// Floor and Ceil clamp the final probability.
	Floor, Ceil float64
}

// DefaultRetention is the retention model used by the simulated
// deployments.
var DefaultRetention = RetentionModel{
	Base:         0.82,
	GainWeight:   2.0,
	TeacherBonus: 0.08,
	Floor:        0.50,
	Ceil:         0.99,
}

// StayProb returns the probability that w remains active after a round.
func (m RetentionModel) StayProb(w *Worker) float64 {
	p := m.Base + m.GainWeight*w.LastGain
	if w.WasTeacher {
		p += m.TeacherBonus
	}
	if p < m.Floor {
		p = m.Floor
	}
	if p > m.Ceil {
		p = m.Ceil
	}
	return p
}

// Config parameterizes one simulated deployment of a population.
type Config struct {
	// GroupSize is the number of workers per group; the paper's pilot
	// deployments found size 4–5 most manageable and used 4.
	GroupSize int
	// Rate is the learning rate r of the linear gain model; the paper
	// calibrated r = 0.5 from pilot deployments.
	Rate float64
	// Mode is the interaction structure used to simulate the group
	// discussion; the collaborative answering protocol of the paper
	// (everyone consults the most knowledgeable peer) corresponds to
	// Star.
	Mode core.Mode
	// Rounds is the number of learning rounds (α).
	Rounds int
	// Questions is the number of items per assessment HIT (10 in the
	// paper).
	Questions int
	// Noise is the relative standard deviation of the multiplicative
	// noise on realized learning gains; the paper's unexplained default
	// parameter ε = 0.05 is exposed here.
	Noise float64
	// Retention is the worker retention model.
	Retention RetentionModel
}

// Validate reports whether the deployment configuration is usable.
func (c Config) Validate() error {
	if c.GroupSize < 2 {
		return fmt.Errorf("amt: group size must be ≥2, got %d", c.GroupSize)
	}
	if !(c.Rate > 0 && c.Rate <= 1) {
		return fmt.Errorf("amt: learning rate must be in (0,1], got %v", c.Rate)
	}
	if !c.Mode.Valid() {
		return fmt.Errorf("amt: invalid mode %v", c.Mode)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("amt: need ≥1 round, got %d", c.Rounds)
	}
	if c.Questions < 1 {
		return fmt.Errorf("amt: need ≥1 assessment question, got %d", c.Questions)
	}
	if c.Noise < 0 {
		return fmt.Errorf("amt: negative noise %v", c.Noise)
	}
	return nil
}

// RoundReport records one round of a deployment.
type RoundReport struct {
	// Round is 1-based.
	Round int
	// Entering is the number of active workers at the start of the
	// round; Participated is how many were actually grouped (the largest
	// multiple of the group size).
	Entering, Participated int
	// MeanEstimated is the mean post-assessment estimated skill of the
	// participants.
	MeanEstimated float64
	// AssessedGain is the summed change in estimated skill across
	// participants (post − pre for this round); it is the quantity the
	// paper's Figures 1 and 4a plot and can be negative through
	// assessment noise.
	AssessedGain float64
	// LatentGain is the summed true latent skill gain of the round.
	LatentGain float64
	// Retained is the number of workers still active after the round's
	// retention draw.
	Retained int
}

// DeploymentResult is the outcome of one population's deployment.
type DeploymentResult struct {
	// Policy is the grouping policy's name.
	Policy string
	// PreMean is the mean estimated skill at pre-qualification.
	PreMean float64
	// Rounds holds per-round reports in order; a deployment ends early
	// if fewer than one full group of workers remains.
	Rounds []RoundReport
	// TotalAssessedGain and TotalLatentGain sum the per-round gains.
	TotalAssessedGain, TotalLatentGain float64
	// PreScores and PostScores are each participating worker's
	// pre-qualification estimate and final estimate, aligned by worker,
	// for paired significance testing (Observation I).
	PreScores, PostScores []float64
	// Completed flags, aligned with PreScores, mark workers still
	// active after the final round — the paper's "stick with the entire
	// learning process".
	Completed []bool
}

// RetentionGainCorrelation pools the workers of the given deployments
// and returns the Spearman correlation between a worker's assessed
// improvement (post − pre) and completing the study. A positive value
// quantifies the mechanism behind the paper's Observation III: workers
// who learn more stay longer.
func RetentionGainCorrelation(deps ...*DeploymentResult) (float64, error) {
	var improvements, completed []float64
	for _, dep := range deps {
		if dep == nil {
			return 0, fmt.Errorf("amt: nil deployment result")
		}
		if len(dep.PreScores) != len(dep.Completed) {
			return 0, fmt.Errorf("amt: %d pre-scores but %d completion flags", len(dep.PreScores), len(dep.Completed))
		}
		for i := range dep.PreScores {
			improvements = append(improvements, dep.PostScores[i]-dep.PreScores[i])
			if dep.Completed[i] {
				completed = append(completed, 1)
			} else {
				completed = append(completed, 0)
			}
		}
	}
	return stats.Spearman(improvements, completed)
}

// RunDeployment simulates one population working under one grouping
// policy for cfg.Rounds rounds, following the paper's protocol:
// PRE-QUALIFICATION (already done by NewWorkerPool), then alternating
// GROUP-FORMATION and POST-ASSESSMENT, with retention draws between
// rounds. The grouping policy sees only estimated skills; learning acts
// on latent skills.
func RunDeployment(cfg Config, workers []*Worker, policy core.Grouper, bank *Bank, rng *rand.Rand) (*DeploymentResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, fmt.Errorf("amt: nil grouping policy")
	}
	if len(workers) < cfg.GroupSize {
		return nil, fmt.Errorf("amt: %d workers cannot fill one group of %d", len(workers), cfg.GroupSize)
	}
	res := &DeploymentResult{Policy: policy.Name()}
	pre := make(map[int]float64, len(workers))
	for _, w := range workers {
		res.PreMean += w.Estimated
		pre[w.ID] = w.Estimated
	}
	res.PreMean /= float64(len(workers))

	for t := 1; t <= cfg.Rounds; t++ {
		active := activeWorkers(workers)
		if len(active) < cfg.GroupSize {
			break
		}
		participants := chooseParticipants(active, cfg.GroupSize, rng)
		k := len(participants) / cfg.GroupSize

		// GROUP-FORMATION on the estimated skills.
		skills := make(core.Skills, len(participants))
		for i, w := range participants {
			skills[i] = w.Estimated
		}
		grouping := policy.Group(skills, k)
		if err := grouping.ValidateEqui(len(participants), k); err != nil {
			return nil, fmt.Errorf("amt: %s produced an invalid grouping in round %d: %w", policy.Name(), t, err)
		}

		// Peer interaction on latent skills.
		report := RoundReport{Round: t, Entering: len(active), Participated: len(participants)}
		preEst := make([]float64, len(participants))
		for i, w := range participants {
			preEst[i] = w.Estimated
		}
		for _, grp := range grouping {
			report.LatentGain += interact(cfg, participants, grp, rng)
		}

		// POST-ASSESSMENT.
		var meanEst float64
		for i, w := range participants {
			w.Assess(rng, bank, cfg.Questions)
			report.AssessedGain += w.Estimated - preEst[i]
			meanEst += w.Estimated
		}
		report.MeanEstimated = meanEst / float64(len(participants))

		// Retention draw.
		for _, w := range participants {
			if rng.Float64() > cfg.Retention.StayProb(w) {
				w.Active = false
			}
		}
		report.Retained = len(activeWorkers(workers))

		res.Rounds = append(res.Rounds, report)
		res.TotalAssessedGain += report.AssessedGain
		res.TotalLatentGain += report.LatentGain
	}

	for _, w := range workers {
		res.PreScores = append(res.PreScores, pre[w.ID])
		res.PostScores = append(res.PostScores, w.Estimated)
		res.Completed = append(res.Completed, w.Active)
	}
	return res, nil
}

// activeWorkers filters workers that are still participating.
func activeWorkers(ws []*Worker) []*Worker {
	out := make([]*Worker, 0, len(ws))
	for _, w := range ws {
		if w.Active {
			out = append(out, w)
		}
	}
	return out
}

// chooseParticipants selects the largest group-size multiple of active
// workers; when the count does not divide evenly, a uniformly random
// subset sits the round out (they remain active).
func chooseParticipants(active []*Worker, groupSize int, rng *rand.Rand) []*Worker {
	m := (len(active) / groupSize) * groupSize
	if m == len(active) {
		return active
	}
	perm := rng.Perm(len(active))
	out := make([]*Worker, m)
	for i := 0; i < m; i++ {
		out[i] = active[perm[i]]
	}
	return out
}

// interact simulates the within-group discussion: latent skills move by
// the learning model of the configured mode, perturbed by multiplicative
// noise, and LastGain/WasTeacher are set for the retention model. It
// returns the group's total latent gain.
func interact(cfg Config, participants []*Worker, group []int, rng *rand.Rand) float64 {
	members := make([]*Worker, len(group))
	for i, idx := range group {
		members[i] = participants[idx]
	}
	// The member who truly knows the most drives the discussion,
	// whatever the estimates said.
	topIdx := 0
	for i, w := range members {
		w.WasTeacher = false
		w.LastGain = 0
		if w.Latent > members[topIdx].Latent {
			topIdx = i
		}
	}
	members[topIdx].WasTeacher = true

	noisy := func(gain float64) float64 {
		if cfg.Noise == 0 {
			return gain
		}
		f := 1 + cfg.Noise*rng.NormFloat64()
		if f < 0 {
			f = 0
		}
		return gain * f
	}

	var total float64
	switch cfg.Mode {
	case core.Star:
		top := members[topIdx].Latent
		for i, w := range members {
			if i == topIdx {
				continue
			}
			g := noisy(cfg.Rate * (top - w.Latent))
			w.applyLatentGain(g)
			total += g
		}
	case core.Clique:
		latents := make([]float64, len(members))
		for i, w := range members {
			latents[i] = w.Latent
		}
		for i, w := range members {
			var sum float64
			higher := 0
			for j, lj := range latents {
				if j != i && lj > latents[i] {
					sum += cfg.Rate * (lj - latents[i])
					higher++
				}
			}
			if higher == 0 {
				continue
			}
			g := noisy(sum / float64(higher))
			w.applyLatentGain(g)
			total += g
		}
	}
	return total
}

// applyLatentGain raises the worker's latent skill, keeping it below 1.
func (w *Worker) applyLatentGain(g float64) {
	if g < 0 {
		g = 0
	}
	w.LastGain = g
	w.Latent += g
	if w.Latent > latentCeil {
		w.Latent = latentCeil
	}
}
