package amt

import (
	"math"
	"math/rand"
	"testing"

	"peerlearn/internal/dygroups"
)

func TestPaymentValidate(t *testing.T) {
	if err := DefaultPayment.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Payment{CompletionBonus: -1}).Validate(); err == nil {
		t.Error("negative bonus accepted")
	}
	if err := (Payment{PerAssessment: -0.5}).Validate(); err == nil {
		t.Error("negative HIT rate accepted")
	}
}

func TestCostManual(t *testing.T) {
	res := &DeploymentResult{
		PreScores:         make([]float64, 8), // 8 pre-qualification HITs
		TotalAssessedGain: 2,
		Rounds: []RoundReport{
			{Round: 1, Participated: 8, Retained: 6},
			{Round: 2, Participated: 6, Retained: 5},
		},
	}
	p := Payment{CompletionBonus: 5, PerAssessment: 0.5}
	report, err := p.Cost(res)
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed != 5 {
		t.Errorf("Completed = %d, want 5", report.Completed)
	}
	if report.Assessments != 8+8+6 {
		t.Errorf("Assessments = %d, want 22", report.Assessments)
	}
	wantTotal := 5*5.0 + 22*0.5
	if math.Abs(report.Total-wantTotal) > 1e-12 {
		t.Errorf("Total = %v, want %v", report.Total, wantTotal)
	}
	if math.Abs(report.PerGain-wantTotal/2) > 1e-12 {
		t.Errorf("PerGain = %v, want %v", report.PerGain, wantTotal/2)
	}
}

func TestCostZeroGainIsInfinite(t *testing.T) {
	res := &DeploymentResult{PreScores: make([]float64, 4)}
	report, err := DefaultPayment.Cost(res)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(report.PerGain, 1) {
		t.Fatalf("PerGain = %v, want +Inf", report.PerGain)
	}
}

func TestCostErrors(t *testing.T) {
	if _, err := DefaultPayment.Cost(nil); err == nil {
		t.Error("nil result accepted")
	}
	if _, err := (Payment{CompletionBonus: -1}).Cost(&DeploymentResult{}); err == nil {
		t.Error("invalid payment accepted")
	}
}

func TestCostOnRealDeployment(t *testing.T) {
	bank := DefaultBank()
	rng := rand.New(rand.NewSource(21))
	ws, err := NewWorkerPool(rng, bank, 32, 10, 0.2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := RunDeployment(testConfig(), ws, dygroups.NewStar(), bank, rng)
	if err != nil {
		t.Fatal(err)
	}
	report, err := DefaultPayment.Cost(dep)
	if err != nil {
		t.Fatal(err)
	}
	if report.Total <= 0 {
		t.Fatalf("deployment cost %v", report.Total)
	}
	if report.Completed < 0 || report.Completed > 32 {
		t.Fatalf("completed %d of 32", report.Completed)
	}
	if report.Assessments < 32 {
		t.Fatalf("assessments %d, want at least the pre-qualification count", report.Assessments)
	}
}
