package amt

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBankJSONRoundTrip(t *testing.T) {
	orig := DefaultBank()
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBankJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() {
		t.Fatalf("round-trip length %d, want %d", loaded.Len(), orig.Len())
	}
	for i := range orig.questions {
		a, b := orig.questions[i], loaded.questions[i]
		if a.ID != b.ID || a.Text != b.Text || a.Answer != b.Answer || a.Rumor != b.Rumor {
			t.Fatalf("question %d changed in round trip: %+v vs %+v", i, a, b)
		}
		if len(a.Options) != len(b.Options) {
			t.Fatalf("question %d options changed", i)
		}
	}
}

func TestLoadBankJSONErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":        "{nope",
		"unknown fields": `{"questions": [], "extra": 1}`,
		"empty bank":     `{"questions": []}`,
		"bad question":   `{"questions": [{"id":1,"text":"q","options":["only one"],"answer":0}]}`,
		"bad answer":     `{"questions": [{"id":1,"text":"q","options":["a","b"],"answer":7}]}`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := LoadBankJSON(strings.NewReader(in)); err == nil {
				t.Fatalf("accepted %q", in)
			}
		})
	}
}

func TestLoadBankFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bank.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := DefaultBank().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBankFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != DefaultBank().Len() {
		t.Fatalf("loaded %d questions", b.Len())
	}
	if _, err := LoadBankFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
