// Package amt simulates the Amazon Mechanical Turk peer-learning study
// of Section V-A of the paper ("Human Subjects Experiments"). The paper
// recruited ~200 workers, estimated their skill with 10-question
// multiple-choice HITs about COVID-19 facts, formed groups under
// different policies, let the groups interact, re-assessed, and measured
// learning gain and worker retention over rounds.
//
// Humans are not available to this reproduction, so the package provides
// a faithful synthetic substitute that exercises the identical pipeline:
//
//   - a question bank of COVID-19 facts and rumors (the paper's sample
//     questions are included verbatim);
//   - workers with a latent skill in (0, 1); an assessment asks n
//     questions, each answered correctly with probability equal to the
//     latent skill (floored at the 1-in-4 guessing rate), and estimates
//     the skill as correct/n — exactly the paper's estimator;
//   - group interaction that moves latent skills by the learning-gain
//     model (r·Δ on the within-group skill differences, under Star or
//     Clique structure) perturbed by multiplicative noise, matching the
//     paper's calibration that learners close on average half the gap
//     (r = 0.5);
//   - a retention model in which a worker's probability of staying for
//     the next round increases with the skill gain it just experienced —
//     the mechanism the paper's Observation III hypothesizes.
//
// The Experiment1 and Experiment2 harnesses mirror the paper's two
// deployments (64 workers / 2 populations / 3 rounds, and 128 workers /
// 4 populations / 2 rounds) and feed Figures 1–4.
package amt
