package amt

import (
	"fmt"
	"math"
)

// Payment models the study's compensation scheme: the paper paid
// workers "$5 if they stick with the entire learning process". The
// model adds a small per-assessment base payment (workers who drop out
// mid-study still get paid for completed HITs, as AMT requires).
type Payment struct {
	// CompletionBonus is paid to every worker still active at the end
	// of the deployment ($5 in the paper).
	CompletionBonus float64
	// PerAssessment is paid for each completed assessment HIT.
	PerAssessment float64
}

// DefaultPayment matches the paper's scheme plus a $0.50 HIT rate.
var DefaultPayment = Payment{CompletionBonus: 5, PerAssessment: 0.5}

// Validate reports whether the payment scheme is usable.
func (p Payment) Validate() error {
	if p.CompletionBonus < 0 || p.PerAssessment < 0 {
		return fmt.Errorf("amt: negative payment amounts (%v, %v)", p.CompletionBonus, p.PerAssessment)
	}
	return nil
}

// CostReport prices one deployment.
type CostReport struct {
	// Completed is the number of workers active after the last round,
	// each earning the completion bonus.
	Completed int
	// Assessments is the total number of assessment HITs administered
	// (the pre-qualification plus one per participant per round).
	Assessments int
	// Total is the deployment's total cost.
	Total float64
	// PerGain is Total divided by the deployment's assessed learning
	// gain — the experimenter's cost of one unit of learning. It is
	// +Inf when the gain is not positive.
	PerGain float64
}

// Cost prices a deployment result under the payment scheme. The
// deployment's population size is taken from the pre-score count.
func (p Payment) Cost(res *DeploymentResult) (CostReport, error) {
	if err := p.Validate(); err != nil {
		return CostReport{}, err
	}
	if res == nil {
		return CostReport{}, fmt.Errorf("amt: nil deployment result")
	}
	report := CostReport{
		Assessments: len(res.PreScores), // pre-qualification HITs
	}
	for _, rr := range res.Rounds {
		report.Assessments += rr.Participated // post-assessment HITs
		report.Completed = rr.Retained
	}
	report.Total = float64(report.Completed)*p.CompletionBonus + float64(report.Assessments)*p.PerAssessment
	if res.TotalAssessedGain > 0 {
		report.PerGain = report.Total / res.TotalAssessedGain
	} else {
		report.PerGain = math.Inf(1)
	}
	return report, nil
}
