// Command tdgsolve solves small Targeted Dynamic Grouping instances
// exactly by brute force and compares the optimum with DyGroups. It is
// the interactive counterpart of the paper's Section V-B3 validation.
//
// Usage:
//
//	tdgsolve -skills 0.1,0.5,0.7,0.9 -k 2 -alpha 3 -r 0.5 -mode star
//	tdgsolve -n 6 -k 2 -alpha 2                # uniform random skills
//
// The instance must have at most 16 participants (the partition count
// explodes beyond that).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"peerlearn/internal/bruteforce"
	"peerlearn/internal/core"
	"peerlearn/internal/dist"
	"peerlearn/internal/dygroups"
)

func main() {
	var (
		skillsCSV = flag.String("skills", "", "comma-separated skill values (overrides -n)")
		n         = flag.Int("n", 6, "number of participants for random skills")
		k         = flag.Int("k", 2, "number of groups")
		alpha     = flag.Int("alpha", 2, "number of rounds")
		r         = flag.Float64("r", 0.5, "learning rate in (0,1]")
		modeName  = flag.String("mode", "star", "interaction mode: star or clique")
		seed      = flag.Int64("seed", 1, "random seed for -n skills")
	)
	flag.Parse()

	if err := run(*skillsCSV, *n, *k, *alpha, *r, *modeName, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "tdgsolve:", err)
		os.Exit(1)
	}
}

func run(skillsCSV string, n, k, alpha int, r float64, modeName string, seed int64) error {
	mode, err := core.ParseMode(modeName)
	if err != nil {
		return err
	}
	gain, err := core.NewLinear(r)
	if err != nil {
		return err
	}
	skills, err := parseSkills(skillsCSV, n, seed)
	if err != nil {
		return err
	}
	cfg := core.Config{K: k, Rounds: alpha, Mode: mode, Gain: gain}

	count, err := bruteforce.CountPartitions(len(skills), k)
	if err != nil {
		return err
	}
	fmt.Printf("instance: n=%d k=%d alpha=%d r=%g mode=%s\n", len(skills), k, alpha, r, mode)
	fmt.Printf("skills  : %v\n", skills)
	fmt.Printf("search  : %d partitions per round, %d rounds\n", count, alpha)

	plan, err := bruteforce.Solve(cfg, skills)
	if err != nil {
		return err
	}
	fmt.Printf("\noptimal total gain: %.6f\n", plan.TotalGain)
	for t, g := range plan.Groupings {
		fmt.Printf("  round %d grouping: %s\n", t+1, formatGrouping(skills, g, plan, t))
	}

	var dy core.Grouper = dygroups.NewStar()
	if mode == core.Clique {
		dy = dygroups.NewClique()
	}
	res, err := core.Run(cfg, skills, dy)
	if err != nil {
		return err
	}
	fmt.Printf("\n%s total gain: %.6f", res.Algorithm, res.TotalGain)
	gap := plan.TotalGain - res.TotalGain
	switch {
	case gap <= 1e-9:
		fmt.Printf("  — matches the optimum\n")
	default:
		fmt.Printf("  — %.6f (%.4g%%) below the optimum\n", gap, 100*gap/plan.TotalGain)
	}
	return nil
}

// formatGrouping renders a plan round as member indices (skills shown
// for the first round, where they equal the input).
func formatGrouping(skills core.Skills, g core.Grouping, plan *bruteforce.Plan, round int) string {
	var b strings.Builder
	for gi, grp := range g {
		if gi > 0 {
			b.WriteByte(' ')
		}
		b.WriteByte('[')
		for j, p := range grp {
			if j > 0 {
				b.WriteByte(' ')
			}
			if round == 0 {
				fmt.Fprintf(&b, "%d(%.3g)", p, skills[p])
			} else {
				fmt.Fprintf(&b, "%d", p)
			}
		}
		b.WriteByte(']')
	}
	return b.String()
}

// parseSkills reads the -skills list or draws n uniform skills.
func parseSkills(csv string, n int, seed int64) (core.Skills, error) {
	if csv == "" {
		if n > bruteforce.MaxParticipants {
			return nil, fmt.Errorf("n=%d exceeds the %d-participant brute-force limit", n, bruteforce.MaxParticipants)
		}
		return dist.Generate(n, dist.Unit, seed), nil
	}
	parts := strings.Split(csv, ",")
	skills := make(core.Skills, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad skill %q: %v", p, err)
		}
		skills = append(skills, v)
	}
	if err := core.ValidateSkills(skills); err != nil {
		return nil, err
	}
	if len(skills) > bruteforce.MaxParticipants {
		return nil, fmt.Errorf("%d skills exceed the %d-participant brute-force limit", len(skills), bruteforce.MaxParticipants)
	}
	return skills, nil
}
