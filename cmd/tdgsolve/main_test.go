package main

import (
	"strings"
	"testing"
)

func TestRunRandomInstance(t *testing.T) {
	if err := run("", 6, 2, 2, 0.5, "star", 1); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunExplicitSkills(t *testing.T) {
	if err := run("0.1, 0.5, 0.7, 0.9", 0, 2, 3, 0.5, "star", 1); err != nil {
		t.Fatalf("run with explicit skills: %v", err)
	}
	if err := run("0.1,0.2,0.3,0.4,0.5,0.6", 0, 3, 2, 0.4, "clique", 1); err != nil {
		t.Fatalf("run clique: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		call func() error
	}{
		{"bad mode", func() error { return run("", 6, 2, 2, 0.5, "mesh", 1) }},
		{"bad rate", func() error { return run("", 6, 2, 2, 0, "star", 1) }},
		{"too many participants", func() error { return run("", 20, 2, 1, 0.5, "star", 1) }},
		{"indivisible", func() error { return run("", 7, 2, 1, 0.5, "star", 1) }},
		{"unparsable skill", func() error { return run("0.1,zebra", 0, 2, 1, 0.5, "star", 1) }},
		{"negative skill", func() error { return run("0.1,-0.5", 0, 2, 1, 0.5, "star", 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.call(); err == nil {
				t.Fatal("expected an error")
			}
		})
	}
}

func TestParseSkills(t *testing.T) {
	s, err := parseSkills("1, 2 ,3", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 3 || s[1] != 2 {
		t.Fatalf("parsed %v", s)
	}
	s, err = parseSkills("", 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 8 {
		t.Fatalf("random skills length %d", len(s))
	}
	long := strings.Repeat("0.5,", 20) + "0.5"
	if _, err := parseSkills(long, 0, 1); err == nil {
		t.Error("oversize explicit skills accepted")
	}
}
