package main

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"peerlearn/internal/metrics"
	"peerlearn/internal/server"
)

// startDaemon runs the daemon's serve loop on an ephemeral port and
// returns the base URL, the registry (for polling the in-flight
// gauge), the cancel that plays the role of SIGTERM, and the channel
// serve's result lands on.
func startDaemon(t *testing.T) (string, *metrics.Registry, context.CancelFunc, chan error) {
	t.Helper()
	reg := metrics.NewRegistry()
	h := server.New(server.NewSessionStore(), server.Options{
		Registry: reg,
		Logger:   slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, newServer(ln.Addr().String(), h), ln, 30*time.Second) }()
	return "http://" + ln.Addr().String(), reg, cancel, done
}

// TestServeStopsOnCancel: with no traffic, cancelling the signal
// context shuts the server down promptly and cleanly.
func TestServeStopsOnCancel(t *testing.T) {
	url, _, cancel, done := startDaemon(t)
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not stop after cancel")
	}
}

// TestShutdownDrainsInFlightSimulate: a SIGTERM (modeled by the signal
// context cancelling) must let an in-flight /v1/simulate finish and be
// answered before serve returns.
func TestShutdownDrainsInFlightSimulate(t *testing.T) {
	url, reg, cancel, done := startDaemon(t)

	// A simulate heavy enough to still be running when we cancel: the
	// per-round sort dominates, so many rounds over a mid-size roster
	// gives a few hundred milliseconds of work.
	skills := make([]string, 1200)
	for i := range skills {
		skills[i] = fmt.Sprintf("%g", 0.01+float64(i%97)/100)
	}
	body := fmt.Sprintf(`{"skills":[%s],"k":300,"rounds":5000}`, strings.Join(skills, ","))

	type result struct {
		status int
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/v1/simulate", "application/json", strings.NewReader(body))
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		resc <- result{status: resp.StatusCode}
	}()

	// Wait until the middleware's in-flight gauge confirms the request
	// is being served, then "SIGTERM".
	inFlight := reg.Gauge("peerlearn_http_in_flight_requests", "")
	deadline := time.Now().Add(10 * time.Second)
	for inFlight.Value() == 0 {
		select {
		case r := <-resc:
			t.Fatalf("simulate finished before shutdown could be tested (status %d, err %v); raise the workload", r.status, r.err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("serve did not drain within 60s")
	}
	// The in-flight response must have been delivered intact.
	select {
	case r := <-resc:
		if r.err != nil {
			t.Fatalf("in-flight request failed during shutdown: %v", r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("in-flight request status %d, want 200", r.status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight response never arrived")
	}

	// And new connections are refused after shutdown.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}
