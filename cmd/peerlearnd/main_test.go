package main

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"peerlearn/internal/metrics"
	"peerlearn/internal/server"
)

// startDaemon runs the daemon's serve loop on an ephemeral port and
// returns the base URL, the registry (for polling the in-flight
// gauge), the cancel that plays the role of SIGTERM, and the channel
// serve's result lands on.
func startDaemon(t *testing.T) (string, *metrics.Registry, context.CancelFunc, chan error) {
	url, reg, cancel, done, _ := startDurableDaemon(t, "")
	return url, reg, cancel, done
}

// startDurableDaemon is startDaemon with the -data-dir wiring: a
// non-empty dataDir attaches a journal and replays it on boot, exactly
// as main does.
func startDurableDaemon(t *testing.T, dataDir string) (string, *metrics.Registry, context.CancelFunc, chan error, *server.SessionStore) {
	t.Helper()
	reg := metrics.NewRegistry()
	store := server.NewSessionStore()
	if dataDir != "" {
		journal, err := server.OpenJournal(dataDir)
		if err != nil {
			t.Fatal(err)
		}
		store.AttachJournal(journal)
	}
	h := server.New(store, server.Options{
		Registry: reg,
		Logger:   slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if dataDir != "" {
		if _, err := store.Recover(); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, newServer(ln.Addr().String(), h), ln, 30*time.Second) }()
	return "http://" + ln.Addr().String(), reg, cancel, done, store
}

// TestServeStopsOnCancel: with no traffic, cancelling the signal
// context shuts the server down promptly and cleanly.
func TestServeStopsOnCancel(t *testing.T) {
	url, _, cancel, done := startDaemon(t)
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not stop after cancel")
	}
}

// TestShutdownDrainsInFlightSimulate: a SIGTERM (modeled by the signal
// context cancelling) must let an in-flight /v1/simulate finish and be
// answered before serve returns.
func TestShutdownDrainsInFlightSimulate(t *testing.T) {
	url, reg, cancel, done := startDaemon(t)

	// A simulate heavy enough to still be running when we cancel: the
	// per-round sort dominates, so many rounds over a mid-size roster
	// gives a few hundred milliseconds of work.
	skills := make([]string, 1200)
	for i := range skills {
		skills[i] = fmt.Sprintf("%g", 0.01+float64(i%97)/100)
	}
	body := fmt.Sprintf(`{"skills":[%s],"k":300,"rounds":5000}`, strings.Join(skills, ","))

	type result struct {
		status int
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/v1/simulate", "application/json", strings.NewReader(body))
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		resc <- result{status: resp.StatusCode}
	}()

	// Wait until the middleware's in-flight gauge confirms the request
	// is being served, then "SIGTERM".
	inFlight := reg.Gauge("peerlearn_http_in_flight_requests", "")
	deadline := time.Now().Add(10 * time.Second)
	for inFlight.Value() == 0 {
		select {
		case r := <-resc:
			t.Fatalf("simulate finished before shutdown could be tested (status %d, err %v); raise the workload", r.status, r.err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("serve did not drain within 60s")
	}
	// The in-flight response must have been delivered intact.
	select {
	case r := <-resc:
		if r.err != nil {
			t.Fatalf("in-flight request failed during shutdown: %v", r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("in-flight request status %d, want 200", r.status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight response never arrived")
	}

	// And new connections are refused after shutdown.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestRestartRecoversSessions is the daemon-level durability test:
// traffic against a -data-dir daemon, an unclean stop (the store is
// crashed, no close events, no drain of the journal), a reboot over
// the same directory, and the pre-crash status must come back byte for
// byte over the real HTTP surface.
func TestRestartRecoversSessions(t *testing.T) {
	dataDir := t.TempDir()
	url, _, cancel, done, store := startDurableDaemon(t, dataDir)

	postJSON := func(base, path, body string) []byte {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST %s: %d: %s", path, resp.StatusCode, b)
		}
		return b
	}
	getStatus := func(base string) string {
		t.Helper()
		resp, err := http.Get(base + "/v1/sessions/1")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET status: %d: %s", resp.StatusCode, b)
		}
		return string(b)
	}

	postJSON(url, "/v1/sessions", `{"group_size":2}`)
	for _, skill := range []string{"0.2", "0.5", "0.8", "0.9"} {
		postJSON(url, "/v1/sessions/1/join", `{"skill":`+skill+`}`)
	}
	postJSON(url, "/v1/sessions/1/round", `{}`)
	postJSON(url, "/v1/sessions/1/round", `{}`)
	want := getStatus(url)

	// Unclean death: drop the store's fds without close events, then
	// stop the listener.
	store.Crash()
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not stop")
	}

	// Reboot over the same data dir.
	url2, _, cancel2, done2, _ := startDurableDaemon(t, dataDir)
	defer func() {
		cancel2()
		<-done2
	}()
	if got := getStatus(url2); got != want {
		t.Fatalf("status after reboot:\n got %s\nwant %s", got, want)
	}
	// The recovered session still serves traffic.
	postJSON(url2, "/v1/sessions/1/round", `{}`)
}
