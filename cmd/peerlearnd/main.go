// Command peerlearnd serves the TDG grouping API over HTTP — the
// deployment shape the paper's motivation sketches for online learning
// platforms.
//
//	peerlearnd -addr :8080
//
//	curl -s localhost:8080/v1/group -d '{"skills":[0.1,0.5,0.9,0.3],"k":2}'
//	curl -s localhost:8080/v1/simulate -d '{"skills":[0.1,0.5,0.9,0.3],"k":2,"rounds":3,"rate":0.5}'
//	curl -s localhost:8080/v1/sessions -d '{"group_size":4}'          # stateful cohorts
//	curl -s localhost:8080/v1/sessions/1/join -d '{"skill":0.4}'
//	curl -s -X POST localhost:8080/v1/sessions/1/round
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"peerlearn/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.NewSessionHandler(server.NewSessionStore()),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	log.Printf("peerlearnd listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
