// Command peerlearnd serves the TDG grouping API over HTTP — the
// deployment shape the paper's motivation sketches for online learning
// platforms.
//
//	peerlearnd -addr :8080 [-data-dir DIR] [-pprof] [-shutdown-timeout 10s]
//
//	curl -s localhost:8080/v1/group -d '{"skills":[0.1,0.5,0.9,0.3],"k":2}'
//	curl -s localhost:8080/v1/simulate -d '{"skills":[0.1,0.5,0.9,0.3],"k":2,"rounds":3,"rate":0.5}'
//	curl -s localhost:8080/v1/sessions -d '{"group_size":4}'          # stateful cohorts
//	curl -s localhost:8080/v1/sessions/1/join -d '{"skill":0.4}'
//	curl -s -X POST localhost:8080/v1/sessions/1/round
//	curl -s localhost:8080/metrics                                    # Prometheus text format
//
// Every /v1 route runs under the observability middleware
// (internal/server): request IDs, structured logs, panic recovery, and
// per-route metrics exposed at GET /metrics. With -pprof the standard
// profiling handlers are mounted under /debug/pprof/. On SIGINT or
// SIGTERM the daemon stops accepting connections and drains in-flight
// requests for up to -shutdown-timeout before exiting.
//
// With -data-dir the session tier is durable: every session keeps an
// append-only WAL (plus periodic snapshots) under the directory, and
// on boot the daemon replays whatever it finds there — after a crash
// or kill -9, live sessions come back with gains and skills
// bit-identical to their pre-crash state. Without the flag sessions
// are in-memory only, as before.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"peerlearn/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data-dir", "",
		"directory for per-session WALs; empty = in-memory sessions only")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof/ profiling handlers")
	drain := flag.Duration("shutdown-timeout", 10*time.Second,
		"how long to drain in-flight requests after SIGINT/SIGTERM")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	store := server.NewSessionStore()
	if *dataDir != "" {
		journal, err := server.OpenJournal(*dataDir)
		if err != nil {
			log.Fatal(err)
		}
		store.AttachJournal(journal)
	}
	handler := server.New(store, server.Options{
		Logger: logger,
		Pprof:  *pprofOn,
	})
	// Recover after server.New: New wires the metrics registry into the
	// store, and recovered sessions must come up with telemetry
	// attached.
	if *dataDir != "" {
		recovered, err := store.Recover()
		if err != nil {
			log.Fatal(err)
		}
		logger.Info("session journal replayed", "data_dir", *dataDir, "sessions", recovered)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logger.Info("peerlearnd listening", "addr", ln.Addr().String(), "pprof", *pprofOn)
	if err := serve(ctx, newServer(*addr, handler), ln, *drain); err != nil {
		log.Fatal(err)
	}
	logger.Info("peerlearnd stopped")
}

// newServer builds the daemon's http.Server with production timeouts.
func newServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
}

// serve runs srv on ln until ctx is cancelled (the daemon wires ctx to
// SIGINT/SIGTERM), then shuts down gracefully: the listener closes,
// in-flight requests get up to drainTimeout to finish, and only then
// does serve return. A drain overrun force-closes the stragglers and
// reports the shutdown error.
func serve(ctx context.Context, srv *http.Server, ln net.Listener, drainTimeout time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		_ = srv.Close()
		return err
	}
	<-errc // Serve has returned http.ErrServerClosed
	return nil
}
