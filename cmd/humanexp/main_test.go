package main

import (
	"os"
	"path/filepath"
	"testing"

	"peerlearn/internal/amt"
)

func TestRunBothExperiments(t *testing.T) {
	if err := run("both", 2, 1, ""); err != nil {
		t.Fatalf("run(both): %v", err)
	}
}

func TestRunSingleExperiments(t *testing.T) {
	if err := run("1", 2, 1, ""); err != nil {
		t.Fatalf("run(1): %v", err)
	}
	if err := run("2", 2, 1, ""); err != nil {
		t.Fatalf("run(2): %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("3", 2, 1, ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunInvalidTrials(t *testing.T) {
	if err := run("1", 0, 1, ""); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestReportDirect(t *testing.T) {
	if err := report(amt.Experiment1Spec(2, 5)); err != nil {
		t.Fatalf("report: %v", err)
	}
}

func TestRunWithCustomBank(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bank.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := amt.DefaultBank().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run("1", 2, 1, path); err != nil {
		t.Fatalf("run with custom bank: %v", err)
	}
	if err := run("1", 2, 1, filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing bank accepted")
	}
}
