// Command humanexp runs the simulated human-subject experiments of
// Section V-A (Experiment-1 and Experiment-2) and prints per-round
// learning gain, retention, and the significance tests behind the
// paper's Observations I and II.
//
// Usage:
//
//	humanexp [-trials 50] [-seed 1] [-exp 1|2|both]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"peerlearn/internal/amt"
)

func main() {
	var (
		trials   = flag.Int("trials", 50, "number of independent simulated deployments to average")
		seed     = flag.Int64("seed", 1, "random seed")
		which    = flag.String("exp", "both", "which experiment to run: 1, 2 or both")
		bankPath = flag.String("bank", "", "JSON question bank to use instead of the built-in COVID-19 bank")
	)
	flag.Parse()

	if err := run(*which, *trials, *seed, *bankPath); err != nil {
		fmt.Fprintln(os.Stderr, "humanexp:", err)
		os.Exit(1)
	}
}

func run(which string, trials int, seed int64, bankPath string) error {
	var bank *amt.Bank
	if bankPath != "" {
		var err error
		bank, err = amt.LoadBankFile(bankPath)
		if err != nil {
			return err
		}
	}
	withBank := func(spec amt.ExperimentSpec) amt.ExperimentSpec {
		spec.Bank = bank
		return spec
	}
	switch which {
	case "1":
		return report(withBank(amt.Experiment1Spec(trials, seed)))
	case "2":
		return report(withBank(amt.Experiment2Spec(trials, seed)))
	case "both":
		if err := report(withBank(amt.Experiment1Spec(trials, seed))); err != nil {
			return err
		}
		fmt.Println()
		return report(withBank(amt.Experiment2Spec(trials, seed)))
	default:
		return fmt.Errorf("unknown experiment %q (want 1, 2 or both)", which)
	}
}

func report(spec amt.ExperimentSpec) error {
	res, err := amt.RunExperiment(spec)
	if err != nil {
		return err
	}
	fmt.Printf("=== %s (simulated AMT, %d trials, %d workers, %d populations, %d rounds) ===\n",
		res.Name, spec.Trials, spec.Workers, len(spec.Policies), res.Rounds)

	fmt.Println("\nLearning gain per round (population total, mean over trials ± 95% CI):")
	for _, s := range res.Series {
		fmt.Printf("  %-22s pre-mean=%.3f ", s.Policy, s.PreMean)
		for t := 0; t < res.Rounds; t++ {
			fmt.Printf(" round%d=%.3f±%.3f", t+1, s.GainPerRound[t], s.GainCI[t])
		}
		fmt.Println()
	}

	fmt.Println("\nMean post-assessment skill per round:")
	for _, s := range res.Series {
		fmt.Printf("  %-22s", s.Policy)
		for t := 0; t < res.Rounds; t++ {
			fmt.Printf(" round%d=%.3f", t+1, s.MeanSkillPerRound[t])
		}
		fmt.Println()
	}

	fmt.Println("\nWorker retention per round (fraction of population still active):")
	for _, s := range res.Series {
		fmt.Printf("  %-22s", s.Policy)
		for t := 0; t < res.Rounds; t++ {
			fmt.Printf(" round%d=%.3f", t+1, s.RetentionPerRound[t])
		}
		fmt.Println()
	}

	fmt.Println("\nStudy economics (paper's $5 completion bonus + $0.50 per HIT):")
	for _, s := range res.Series {
		fmt.Printf("  %-22s mean cost $%.2f, cost per unit of learning gain $%.2f\n",
			s.Policy, s.MeanCost, s.MeanCostPerGain)
	}

	fmt.Println("\nRetention mechanism (Spearman correlation of worker improvement with completing the study):")
	for _, s := range res.Series {
		fmt.Printf("  %-22s ρ = %+.3f\n", s.Policy, s.RetentionGainCorr)
	}

	fmt.Printf("\nObservation I — skills improve with peer interaction:\n")
	fmt.Printf("  paired t-test pre vs post: t=%.2f df=%.0f p=%.3g (mean %.3f → %.3f)\n",
		res.ObservationI.T, res.ObservationI.DF, res.ObservationI.P,
		res.ObservationI.MeanB, res.ObservationI.MeanA)

	fmt.Printf("\nObservation II — DyGroups outperforms the baselines (Welch t-test on per-trial total gain):\n")
	names := make([]string, 0, len(res.ObservationII))
	for name := range res.ObservationII {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tt := res.ObservationII[name]
		fmt.Printf("  vs %-22s t=%.2f df=%.1f p=%.3g (DyGroups %.3f vs %.3f)\n",
			name, tt.T, tt.DF, tt.P, tt.MeanA, tt.MeanB)
	}
	return nil
}
