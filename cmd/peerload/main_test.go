package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"peerlearn/internal/load"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// smokeArgs is the small deterministic configuration the driver tests
// share: big enough to exercise every op kind, small enough to stay
// fast under -race.
func smokeArgs(extra ...string) []string {
	args := []string{
		"-deterministic", "-seed", "1",
		"-schedule", "constant:500", "-ops", "600", "-sessions", "8",
	}
	return append(args, extra...)
}

func runPeerload(t *testing.T, args []string) (rc int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	rc = run(args, &out, &errb)
	return rc, out.String(), errb.String()
}

// TestExitCodes pins the contract scripts and CI build on: 0 pass,
// 1 gate failure or malformed baseline, 2 bad invocation.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()

	t.Run("pass", func(t *testing.T) {
		rc, _, stderr := runPeerload(t, smokeArgs())
		if rc != 0 {
			t.Fatalf("rc = %d, want 0; stderr:\n%s", rc, stderr)
		}
	})

	t.Run("slo violation", func(t *testing.T) {
		rc, _, stderr := runPeerload(t, smokeArgs("-slo", "round:p99<1ns"))
		if rc != 1 {
			t.Fatalf("rc = %d, want 1", rc)
		}
		if !strings.Contains(stderr, "SLO") {
			t.Errorf("stderr does not report the violated SLO:\n%s", stderr)
		}
	})

	t.Run("malformed baseline", func(t *testing.T) {
		bad := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		rc, _, _ := runPeerload(t, smokeArgs("-compare", bad))
		if rc != 1 {
			t.Fatalf("rc = %d, want 1", rc)
		}
	})

	t.Run("missing baseline", func(t *testing.T) {
		rc, _, _ := runPeerload(t, smokeArgs("-compare", filepath.Join(dir, "absent.json")))
		if rc != 1 {
			t.Fatalf("rc = %d, want 1", rc)
		}
	})

	t.Run("self compare passes", func(t *testing.T) {
		base := filepath.Join(dir, "self.json")
		rc, _, stderr := runPeerload(t, smokeArgs("-out", base))
		if rc != 0 {
			t.Fatalf("generating baseline: rc = %d, stderr:\n%s", rc, stderr)
		}
		rc, stdout, stderr := runPeerload(t, smokeArgs("-compare", base, "-max-regress", "0"))
		if rc != 0 {
			t.Fatalf("self-compare rc = %d, stderr:\n%s", rc, stderr)
		}
		if !strings.Contains(stdout, "1.00x of baseline") {
			t.Errorf("self-compare output missing ratio lines:\n%s", stdout)
		}
	})

	badInvocations := [][]string{
		{"-bogus-flag"},
		{"-deterministic", "-addr", "http://localhost:1"},
		{"-mix", "warp=2"},
		{"-schedule", "burst:9"},
		{"-slo", "round:p42<1ms"},
		{"-zipf", "-1"},
		{"-group-size", "1"},
		smokeArgs("stray-positional"),
	}
	for _, args := range badInvocations {
		if rc, _, _ := runPeerload(t, args); rc != 2 {
			t.Errorf("run(%v) rc = %d, want 2", args, rc)
		}
	}
}

// TestDeterministicByteStable runs the smoke twice at the same seed and
// requires byte-identical reports — the property CI's double-run check
// enforces on the full configuration.
func TestDeterministicByteStable(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	if rc, _, stderr := runPeerload(t, smokeArgs("-out", a)); rc != 0 {
		t.Fatalf("first run rc = %d:\n%s", rc, stderr)
	}
	if rc, _, stderr := runPeerload(t, smokeArgs("-out", b)); rc != 0 {
		t.Fatalf("second run rc = %d:\n%s", rc, stderr)
	}
	ra, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ra, rb) {
		t.Error("deterministic runs at the same seed produced different reports")
	}
	if rc, _, _ := runPeerload(t, smokeArgs("-seed", "2", "-out", b)); rc != 0 {
		t.Fatal("seed-2 run failed")
	}
	rb, err = os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ra, rb) {
		t.Error("different seeds produced identical reports; the seed is not reaching the workload")
	}
}

// TestGoldenReport pins the full deterministic report (environment
// fields normalized) against testdata; regenerate with -update.
func TestGoldenReport(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "report.json")
	if rc, _, stderr := runPeerload(t, smokeArgs("-out", out)); rc != 0 {
		t.Fatalf("rc = %d:\n%s", rc, stderr)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	got := normalizeReport(t, raw)

	golden := filepath.Join("testdata", "smoke_report.json")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report drifted from golden; run go test ./cmd/peerload -update if intended.\ngot:\n%s", got)
	}
}

// normalizeReport zeroes the environment-dependent header fields so
// golden comparison is machine-independent.
func normalizeReport(t *testing.T, raw []byte) []byte {
	t.Helper()
	rep, err := load.ParseReport(raw)
	if err != nil {
		t.Fatal(err)
	}
	rep.GoVersion = ""
	rep.GoMaxProcs = 0
	enc, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return enc
}
