// Command peerload is the open-loop serving-path load harness: it
// drives the peerlearn API with a mixed session workload on a fixed
// arrival schedule, measures every latency from the request's intended
// send time (coordinated-omission-safe), and gates the result on
// absolute latency SLOs and on regression against a committed
// BENCH-style baseline.
//
// Two execution modes share all of the workload logic:
//
//   - live: -addr http://host:port drives a running peerlearnd over
//     TCP with up to -max-inflight concurrent requests.
//   - in-process (default): the harness builds server.New directly and
//     calls the handler — no sockets. With -deterministic it runs
//     sequentially on a seeded virtual clock, so the entire report is
//     a byte-stable pure function of the seed: the CI smoke mode.
//
// Exit codes: 0 success; 1 run failure, SLO violation, regression, or
// malformed baseline; 2 bad flags or specs.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"peerlearn/internal/load"
	"peerlearn/internal/metrics"
	"peerlearn/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// opRoutes maps each workload op to the server route template its
// measured request hits, for the server-side p99 annotation.
var opRoutes = map[string]string{
	"create":   "/v1/sessions",
	"delete":   "/v1/sessions/{id}",
	"join":     "/v1/sessions/{id}/join",
	"leave":    "/v1/sessions/{id}/leave",
	"round":    "/v1/sessions/{id}/round",
	"status":   "/v1/sessions/{id}",
	"simulate": "/v1/simulate",
	"group":    "/v1/group",
}

// defaultMix is a session-heavy production-shaped blend: mostly
// membership churn and rounds, a trickle of lifecycle and stateless
// traffic.
const defaultMix = "create=1,delete=1,join=4,leave=2,round=3,status=2,simulate=1"

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("peerload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr          = fs.String("addr", "", "base URL of a live daemon (e.g. http://127.0.0.1:8080); empty drives an in-process server")
		deterministic = fs.Bool("deterministic", false, "sequential run on a seeded virtual clock (in-process only); the report is byte-stable per seed")
		seed          = fs.Int64("seed", 1, "seed for the plan, skills, and virtual clock")
		scheduleSpec  = fs.String("schedule", "constant:500", "arrival schedule: constant:R, ramp:R0:R1, or step:R0:R1:F (requests/second)")
		duration      = fs.Duration("duration", 10*time.Second, "schedule duration (sets the op count unless -ops is given)")
		opsFlag       = fs.Int("ops", 0, "total scheduled ops (0 means the schedule's arrival count over -duration)")
		sessions      = fs.Int("sessions", 16, "session keyspace size")
		groupSize     = fs.Int("group-size", 4, "group size for created sessions")
		mode          = fs.String("mode", "star", "interaction mode for created sessions (star or clique)")
		zipfS         = fs.Float64("zipf", 1.1, "Zipf skew of session popularity (0 = uniform)")
		mixSpec       = fs.String("mix", defaultMix, "op mix weights, e.g. join=4,round=3")
		maxInFlight   = fs.Int("max-inflight", 64, "max concurrent requests (concurrent modes)")
		timeout       = fs.Duration("timeout", 5*time.Second, "per-request timeout (live mode)")
		out           = fs.String("out", "", "write the JSON report to this file")
		compare       = fs.String("compare", "", "baseline report to compare entries against")
		maxRegress    = fs.Float64("max-regress", 0.25, "max allowed fractional latency regression vs -compare")
		sloSpec       = fs.String("slo", "", "absolute latency gates, e.g. round:p99<50ms,all:p99<100ms")
		metricsOut    = fs.String("metrics-out", "", "dump the final /metrics exposition to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "peerload: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if *deterministic && *addr != "" {
		fmt.Fprintln(stderr, "peerload: -deterministic runs in-process; it cannot target -addr")
		return 2
	}
	if *sessions < 1 || *groupSize < 2 || *opsFlag < 0 || *maxRegress < 0 {
		fmt.Fprintln(stderr, "peerload: -sessions must be ≥ 1, -group-size ≥ 2, -ops ≥ 0, -max-regress ≥ 0")
		return 2
	}

	mix, err := load.ParseMix(*mixSpec)
	if err != nil {
		fmt.Fprintf(stderr, "peerload: %v\n", err)
		return 2
	}
	sched, err := load.ParseSchedule(*scheduleSpec, *duration)
	if err != nil {
		fmt.Fprintf(stderr, "peerload: %v\n", err)
		return 2
	}
	slos, err := load.ParseSLOs(*sloSpec)
	if err != nil {
		fmt.Fprintf(stderr, "peerload: %v\n", err)
		return 2
	}
	zipf, err := load.NewZipf(*sessions, *zipfS)
	if err != nil {
		fmt.Fprintf(stderr, "peerload: %v\n", err)
		return 2
	}

	// Assemble the target and clock per mode.
	var (
		d     doer
		clock load.Clock
		reg   *metrics.Registry // non-nil only in-process
	)
	switch {
	case *addr != "":
		d = newHTTPDoer(*addr, *timeout)
	default:
		reg = metrics.NewRegistry()
		opts := server.Options{
			Registry: reg,
			Logger:   slog.New(slog.NewTextHandler(io.Discard, nil)),
		}
		if *deterministic {
			// One virtual clock serves both the dispatcher and the serving
			// middleware; every latency is a pure function of the seed.
			vc := load.NewVirtualClock(uint64(*seed)+0x9e3779b97f4a7c15, 20*time.Microsecond, 200*time.Microsecond)
			clock = vc
			opts.Clock = vc
			var rid atomic.Int64
			opts.RequestID = func() string {
				return fmt.Sprintf("load-%08d", rid.Add(1))
			}
		}
		d = &inprocDoer{handler: server.New(server.NewSessionStore(), opts)}
	}

	h := newHarness(d, *sessions, *groupSize, *mode, *seed)
	if err := h.Setup(); err != nil {
		fmt.Fprintf(stderr, "peerload: %v\n", err)
		return 1
	}

	n := *opsFlag
	if n == 0 {
		n = sched.Count()
	}
	ops := load.BuildPlan(n, mix, zipf, load.NewRand(uint64(*seed)))

	st := load.Run(ops, sched, h, load.RunConfig{
		MaxInFlight: *maxInFlight,
		Sequential:  *deterministic,
		Clock:       clock,
	})

	rep := &load.Report{
		GoVersion:     runtime.Version(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Deterministic: *deterministic,
		Seed:          *seed,
		Schedule:      sched.String(),
		Mix:           mix.String(),
		Sessions:      *sessions,
		ZipfS:         *zipfS,
		Ops:           n,
	}
	rep.Fill(st)
	rep.HTTPIssued = h.Issued()
	if reg != nil {
		annotateServerQuantiles(rep, reg)
	}

	printSummary(stdout, rep)

	if *metricsOut != "" {
		expo, err := h.Scrape()
		if err != nil {
			fmt.Fprintf(stderr, "peerload: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*metricsOut, []byte(expo), 0o644); err != nil {
			fmt.Fprintf(stderr, "peerload: %v\n", err)
			return 1
		}
	}
	if *out != "" {
		enc, err := rep.Encode()
		if err != nil {
			fmt.Fprintf(stderr, "peerload: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintf(stderr, "peerload: %v\n", err)
			return 1
		}
	}

	rc := 0
	if *compare != "" {
		if err := load.CompareFile(rep, *compare, *maxRegress, stdout); err != nil {
			fmt.Fprintf(stderr, "peerload: %v\n", err)
			rc = 1
		}
	}
	if violations := load.CheckSLOs(rep, slos); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(stderr, "peerload: %s\n", v)
		}
		rc = 1
	}
	return rc
}

// annotateServerQuantiles fills each route report's ServerP99Ns from
// the in-process registry's duration histogram — the server's own view
// of the same traffic. The vec lookup is get-or-create on the same
// name the middleware registered, so it always resolves to the live
// family.
func annotateServerQuantiles(rep *load.Report, reg *metrics.Registry) {
	vec := reg.HistogramVec("peerlearn_http_request_duration_seconds",
		"Request latency in seconds, by route template.",
		metrics.DefBuckets, "route")
	for i := range rep.Routes {
		route, ok := opRoutes[rep.Routes[i].Op]
		if !ok {
			continue
		}
		hist := vec.With(route)
		if hist.Count() == 0 {
			continue
		}
		rep.Routes[i].ServerP99Ns = int64(hist.Quantile(0.99) * 1e9)
	}
}

// printSummary renders the human-readable per-route table.
func printSummary(w io.Writer, rep *load.Report) {
	fmt.Fprintf(w, "peerload: %d ops, schedule %s, mix %s, %d sessions (zipf %g), seed %d\n",
		rep.Ops, rep.Schedule, rep.Mix, rep.Sessions, rep.ZipfS, rep.Seed)
	fmt.Fprintf(w, "%-10s %8s %7s %12s %12s %12s %12s\n",
		"op", "count", "errors", "p50", "p90", "p99", "max")
	for _, rr := range rep.Routes {
		fmt.Fprintf(w, "%-10s %8d %7d %12v %12v %12v %12v\n",
			rr.Op, rr.Count, rr.Errors,
			time.Duration(rr.P50Ns), time.Duration(rr.P90Ns),
			time.Duration(rr.P99Ns), time.Duration(rr.MaxNs))
	}
}
