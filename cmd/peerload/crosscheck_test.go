package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"peerlearn/internal/load"
	"peerlearn/internal/simtest"
)

// TestClientServerCountsAgree is the end-to-end accounting cross-check:
// after a deterministic run, the server's own /metrics exposition must
// agree with the client's books — every request the harness issued is
// counted by the middleware under the same route template, no more, no
// fewer, and the server's duration histogram is internally consistent
// (cumulative buckets, +Inf equal to _count). A disagreement means one
// side is dropping or double-counting requests, which would silently
// invalidate every latency report.
func TestClientServerCountsAgree(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "report.json")
	metricsOut := filepath.Join(dir, "metrics.txt")
	rc, _, stderr := runPeerload(t, smokeArgs("-out", out, "-metrics-out", metricsOut))
	if rc != 0 {
		t.Fatalf("rc = %d:\n%s", rc, stderr)
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := load.ParseReport(raw)
	if err != nil {
		t.Fatal(err)
	}
	expo, err := os.ReadFile(metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	samples := simtest.ParseExposition(string(expo))

	// Per-route totals: sum peerlearn_http_requests_total across methods
	// and codes, then compare exactly against the client's Issued map.
	serverTotals := make(map[string]uint64)
	for _, s := range samples {
		if s.Name != "peerlearn_http_requests_total" {
			continue
		}
		v, err := strconv.ParseFloat(s.Value, 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", s.Value, err)
		}
		serverTotals[s.Label("route")] += uint64(v)
	}
	if len(rep.HTTPIssued) == 0 {
		t.Fatal("report carries no http_issued counts")
	}
	for route, clientN := range rep.HTTPIssued {
		if serverN := serverTotals[route]; serverN != clientN {
			t.Errorf("route %s: client issued %d, server counted %d", route, clientN, serverN)
		}
	}
	for route, serverN := range serverTotals {
		if _, ok := rep.HTTPIssued[route]; !ok {
			t.Errorf("server counted %d requests on %s the client never booked", serverN, route)
		}
	}

	// The measured per-op counts must also reconcile: each op's recorded
	// responses can never exceed the total traffic on its route.
	for _, rr := range rep.Routes {
		if rr.Op == "all" {
			continue
		}
		route := opRoutes[rr.Op]
		if rr.Count > rep.HTTPIssued[route] {
			t.Errorf("op %s recorded %d responses but only %d requests hit %s", rr.Op, rr.Count, rep.HTTPIssued[route], route)
		}
	}

	// Duration histogram internal consistency, per route: bucket counts
	// non-decreasing in le order (the registry writes them ascending) and
	// +Inf equal to the series _count.
	type state struct {
		last int64
		inf  int64
	}
	perRoute := make(map[string]*state)
	for _, s := range samples {
		if s.Name != "peerlearn_http_request_duration_seconds_bucket" {
			continue
		}
		route := s.Label("route")
		st := perRoute[route]
		if st == nil {
			st = &state{last: -1, inf: -1}
			perRoute[route] = st
		}
		v, err := strconv.ParseFloat(s.Value, 64)
		if err != nil {
			t.Fatalf("parsing bucket %q: %v", s.Value, err)
		}
		n := int64(v)
		if n < st.last {
			t.Errorf("route %s: bucket %q count %d below previous %d (not cumulative)", route, s.Labels, n, st.last)
		}
		st.last = n
		if strings.Contains(s.Labels, `le="+Inf"`) {
			st.inf = n
		}
	}
	if len(perRoute) == 0 {
		t.Fatal("no duration histogram buckets in the exposition")
	}
	counts, err := countSeries(samples, "peerlearn_http_request_duration_seconds_count")
	if err != nil {
		t.Fatal(err)
	}
	for route, st := range perRoute {
		if st.inf != counts[route] {
			t.Errorf("route %s: +Inf bucket %d != _count %d", route, st.inf, counts[route])
		}
		if uint64(st.inf) != serverTotals[route] {
			t.Errorf("route %s: duration histogram saw %d requests, counter saw %d", route, st.inf, serverTotals[route])
		}
	}
}

// countSeries reads one integer-valued series per route label.
func countSeries(samples []simtest.Sample, name string) (map[string]int64, error) {
	out := make(map[string]int64)
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		v, err := strconv.ParseFloat(s.Value, 64)
		if err != nil {
			return nil, err
		}
		out[s.Label("route")] += int64(v)
	}
	return out, nil
}
