package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"peerlearn/internal/load"
	"peerlearn/internal/server"
)

// doer issues one HTTP exchange and returns the response status and
// body. The two implementations are an in-process handler call (the
// deterministic smoke and race-hammer modes) and a real client against
// a live daemon.
type doer interface {
	do(method, path string, body []byte) (status int, respBody []byte, err error)
}

// inprocDoer drives an http.Handler directly — no sockets, no
// goroutine handoff — so a virtual clock sees an identical sequence of
// reads on every run.
type inprocDoer struct {
	handler http.Handler
}

func (d *inprocDoer) do(method, path string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, "http://peerload.invalid"+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	w := &memWriter{hdr: make(http.Header)}
	d.handler.ServeHTTP(w, req)
	return w.status(), w.buf.Bytes(), nil
}

// memWriter is the minimal in-memory http.ResponseWriter the in-process
// doer collects responses into.
type memWriter struct {
	hdr   http.Header
	code  int
	wrote bool
	buf   bytes.Buffer
}

func (w *memWriter) Header() http.Header { return w.hdr }

func (w *memWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
}

func (w *memWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.WriteHeader(http.StatusOK)
	}
	return w.buf.Write(p)
}

func (w *memWriter) status() int {
	if w.wrote {
		return w.code
	}
	return http.StatusOK
}

// httpDoer drives a live daemon over TCP.
type httpDoer struct {
	base   string
	client *http.Client
}

func newHTTPDoer(base string, timeout time.Duration) *httpDoer {
	return &httpDoer{base: base, client: &http.Client{Timeout: timeout}}
}

func (d *httpDoer) do(method, path string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, d.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, respBody, nil
}

// keySlot is one entry of the session keyspace: the live session id
// currently holding the slot (0 after a delete, until the next create)
// and the stack of participant ids joined through the harness, so
// leave ops retire real members.
type keySlot struct {
	mu sync.Mutex
	//peerlint:guardedby mu
	id int64
	//peerlint:guardedby mu
	pids []int64
}

// harness implements load.Target: it translates plan ops into API
// requests, tracks the session keyspace, and counts every request it
// issues by server route template for the metrics cross-check.
type harness struct {
	doer      doer
	groupSize int
	mode      string
	seed      int64
	slots     []*keySlot

	issuedMu sync.Mutex
	//peerlint:guardedby issuedMu
	issued map[string]uint64
}

func newHarness(d doer, sessions, groupSize int, mode string, seed int64) *harness {
	h := &harness{
		doer:      d,
		groupSize: groupSize,
		mode:      mode,
		seed:      seed,
		slots:     make([]*keySlot, sessions),
		issued:    make(map[string]uint64),
	}
	for i := range h.slots {
		h.slots[i] = &keySlot{}
	}
	return h
}

// request issues one exchange and books it under the server's route
// template. Every request the harness sends — scheduled, setup, or
// maintenance — flows through here, so issued counts mirror exactly
// what the server's middleware saw.
func (h *harness) request(method, path string, body []byte) (int, []byte, error) {
	status, respBody, err := h.doer.do(method, path, body)
	route := server.RouteLabel(path)
	h.issuedMu.Lock()
	h.issued[route]++
	h.issuedMu.Unlock()
	return status, respBody, err
}

// Issued returns a copy of the per-route request counts.
func (h *harness) Issued() map[string]uint64 {
	h.issuedMu.Lock()
	defer h.issuedMu.Unlock()
	out := make(map[string]uint64, len(h.issued))
	for k, v := range h.issued {
		out[k] = v
	}
	return out
}

func marshal(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// All request types marshal by construction; surface the bug
		// loudly in the request body rather than panicking mid-run.
		return []byte(fmt.Sprintf(`{"marshal_error":%q}`, err.Error()))
	}
	return b
}

// Setup populates the keyspace before measurement: one session per
// slot with 2×groupSize members. Setup traffic is counted in Issued
// but never recorded in the latency stats.
func (h *harness) Setup() error {
	for i := range h.slots {
		id, status, err := h.createSession(int64(i))
		if err != nil {
			return fmt.Errorf("setup: creating session for slot %d: %w", i, err)
		}
		if status != http.StatusCreated {
			return fmt.Errorf("setup: creating session for slot %d: status %d", i, status)
		}
		slot := h.slots[i]
		slot.mu.Lock()
		slot.id = id
		slot.mu.Unlock()
		// Seed the roster with a negative sequence so setup skills never
		// collide with a scheduled op's stream.
		h.populate(slot, id, -(i + 1))
	}
	return nil
}

// populate joins 2×groupSize members into session id, with skills
// drawn from a fresh rng keyed by (harness seed, seq) — stateless, so
// the roster is deterministic however ops interleave. Members are
// tracked on the slot only while it still holds id.
func (h *harness) populate(slot *keySlot, id int64, seq int) {
	rng := load.NewRand(uint64(h.seed)*0x9e3779b97f4a7c15 ^ uint64(int64(seq)))
	for j := 0; j < 2*h.groupSize; j++ {
		skill := 0.05 + 0.95*rng.Float64()
		pid, status, err := h.join(id, skill)
		if err != nil || status != http.StatusOK {
			return
		}
		slot.mu.Lock()
		if slot.id == id {
			slot.pids = append(slot.pids, pid)
		}
		slot.mu.Unlock()
	}
}

// rotate installs a freshly created, populated session into the slot —
// the unmeasured maintenance half of the create and delete ops, which
// keeps the keyspace live under sustained churn. The session the slot
// held before (if any survived the op itself) is retired so churn
// never leaks toward the store's session limit.
func (h *harness) rotate(slot *keySlot, newID int64, seq int) {
	slot.mu.Lock()
	old := slot.id
	slot.id = newID
	slot.pids = nil
	slot.mu.Unlock()
	if old != 0 && old != newID {
		_, _, _ = h.request(http.MethodDelete, sessionPath(old, ""), nil)
	}
	h.populate(slot, newID, seq)
}

// createSession posts a new session and parses its id.
func (h *harness) createSession(seedOffset int64) (id int64, status int, err error) {
	body := marshal(server.CreateSessionRequest{
		GroupSize: h.groupSize,
		Mode:      h.mode,
		Seed:      h.seed + seedOffset,
	})
	status, respBody, err := h.request(http.MethodPost, "/v1/sessions", body)
	if err != nil || status != http.StatusCreated {
		return 0, status, err
	}
	var st server.SessionStatus
	if err := json.Unmarshal(respBody, &st); err != nil {
		return 0, status, fmt.Errorf("parsing create response: %w", err)
	}
	return st.ID, status, nil
}

// join posts one participant and parses the assigned id.
func (h *harness) join(session int64, skill float64) (pid int64, status int, err error) {
	body := marshal(server.JoinRequest{Skill: skill})
	status, respBody, err := h.request(http.MethodPost, sessionPath(session, "join"), body)
	if err != nil || status != http.StatusOK {
		return 0, status, err
	}
	var resp server.JoinResponse
	if err := json.Unmarshal(respBody, &resp); err != nil {
		return 0, status, fmt.Errorf("parsing join response: %w", err)
	}
	return resp.ParticipantID, status, nil
}

func sessionPath(id int64, action string) string {
	p := fmt.Sprintf("/v1/sessions/%d", id)
	if action != "" {
		p += "/" + action
	}
	return p
}

// Do executes one scheduled op. Slot state is read and updated under
// the slot lock, but requests are always issued outside it, so a slow
// response never serializes the rest of the keyspace.
func (h *harness) Do(op load.Op) (int, error) {
	slot := h.slots[op.Key%len(h.slots)]
	switch op.Kind {
	case load.OpCreate:
		// The measured request is the create; installing and populating
		// the replacement (and retiring the displaced session) is
		// unmeasured maintenance.
		id, status, err := h.createSession(int64(op.Seq))
		if err != nil || status != http.StatusCreated {
			return status, err
		}
		h.rotate(slot, id, op.Seq)
		return status, nil

	case load.OpDelete:
		// The measured request is the DELETE — in concurrent mode it
		// races in-flight rounds on the same session, the store's CAS
		// admission path. Rotating in a replacement is maintenance.
		slot.mu.Lock()
		id := slot.id
		slot.id = 0
		slot.pids = nil
		slot.mu.Unlock()
		status, _, err := h.request(http.MethodDelete, sessionPath(id, ""), nil)
		if nid, cstatus, cerr := h.createSession(int64(op.Seq)); cerr == nil && cstatus == http.StatusCreated {
			h.rotate(slot, nid, op.Seq)
		}
		return status, err

	case load.OpJoin:
		slot.mu.Lock()
		id := slot.id
		slot.mu.Unlock()
		pid, status, err := h.join(id, op.Skill)
		if err != nil || status != http.StatusOK {
			return status, err
		}
		slot.mu.Lock()
		// The slot may have been recycled while the join was in flight;
		// only track the member if it still belongs to this session.
		if slot.id == id {
			slot.pids = append(slot.pids, pid)
		}
		slot.mu.Unlock()
		return status, nil

	case load.OpLeave:
		slot.mu.Lock()
		id := slot.id
		var pid int64
		if n := len(slot.pids); n > 0 {
			pid = slot.pids[n-1]
			slot.pids = slot.pids[:n-1]
		}
		slot.mu.Unlock()
		body := marshal(server.LeaveRequest{ParticipantID: pid})
		status, _, err := h.request(http.MethodPost, sessionPath(id, "leave"), body)
		return status, err

	case load.OpRound:
		slot.mu.Lock()
		id := slot.id
		slot.mu.Unlock()
		status, _, err := h.request(http.MethodPost, sessionPath(id, "round"), []byte("{}"))
		return status, err

	case load.OpStatus:
		slot.mu.Lock()
		id := slot.id
		slot.mu.Unlock()
		status, _, err := h.request(http.MethodGet, sessionPath(id, ""), nil)
		return status, err

	case load.OpSimulate:
		body := marshal(server.SimulateRequest{
			Skills: opSkills(op.Skill),
			K:      2,
			Rounds: 2,
			Mode:   h.mode,
			Seed:   h.seed + int64(op.Seq),
		})
		status, _, err := h.request(http.MethodPost, "/v1/simulate", body)
		return status, err

	case load.OpGroup:
		body := marshal(server.GroupRequest{
			Skills: opSkills(op.Skill),
			K:      2,
			Mode:   h.mode,
			Seed:   h.seed + int64(op.Seq),
		})
		status, _, err := h.request(http.MethodPost, "/v1/group", body)
		return status, err

	default:
		return 0, fmt.Errorf("unknown op kind %v", op.Kind)
	}
}

// opSkills derives a small deterministic roster for the stateless
// endpoints from the op's seeded skill draw.
func opSkills(skill float64) []float64 {
	return []float64{skill, 0.5 * skill, 0.25 + 0.5*skill, 0.9}
}

// Scrape fetches the /metrics exposition. Not booked in Issued: the
// endpoint is mounted outside the serving middleware, so the server
// does not count scrapes either.
func (h *harness) Scrape() (string, error) {
	status, body, err := h.doer.do(http.MethodGet, "/metrics", nil)
	if err != nil {
		return "", err
	}
	if status != http.StatusOK {
		return "", fmt.Errorf("scraping /metrics: status %d", status)
	}
	return string(body), nil
}
