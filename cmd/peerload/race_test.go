package main

import (
	"os"
	"path/filepath"
	"testing"

	"peerlearn/internal/load"
)

// TestHotSessionHammer drives the concurrent in-process mode against a
// two-slot keyspace with extreme Zipf skew, so nearly all traffic —
// rounds, joins, leaves, and a delete-heavy lifecycle mix — lands on
// one hot session. Under -race this re-proves the serving tier's
// concurrency contracts end to end: DELETE /v1/sessions/{id} racing
// in-flight rounds through the store's shard/CAS admission, the
// matchmaker's session locking, and the harness's own slot accounting.
// Transport errors (as opposed to 4xx responses, which are legitimate
// races against deletion) must be zero: an in-process handler call has
// no network to fail.
func TestHotSessionHammer(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "report.json")
	args := []string{
		"-seed", "7",
		"-sessions", "2", "-zipf", "4",
		"-mix", "create=1,delete=2,join=4,leave=2,round=4,status=2",
		"-schedule", "constant:4000", "-duration", "500ms",
		"-max-inflight", "64",
		"-out", out,
	}
	rc, _, stderr := runPeerload(t, args)
	if rc != 0 {
		t.Fatalf("rc = %d:\n%s", rc, stderr)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := load.ParseReport(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("hammer saw %d transport errors; in-process calls cannot fail at the transport", rep.Errors)
	}
	if rep.Ops != 2000 {
		t.Errorf("scheduled %d ops, want 2000 (constant:4000 over 500ms)", rep.Ops)
	}
	var total uint64
	for _, rr := range rep.Routes {
		if rr.Op == "all" {
			total = rr.Count
		}
	}
	if total != 2000 {
		t.Errorf("recorded %d responses, want every scheduled op answered", total)
	}
	// The hot slot must have seen real round traffic, not just 404 churn.
	if rr, ok := rep.Route("round"); !ok || rr.Status["2xx"] == 0 {
		t.Error("no successful rounds on the hot session; the hammer is not exercising the round path")
	}
}
