// Command peerlint is the project-specific static-analysis driver: a
// multichecker over the analyzers in internal/analysis/... that guard
// the reproduction's correctness properties — no raw float equality
// (floateq), no global math/rand in library code (randsource),
// exhaustive interaction-mode switches (modeswitch), no panics in
// library code (panicfree), the flow-sensitive lock and context
// disciplines (lockheld, unlockpath, ctxleak) built on the
// internal/analysis/cfg dataflow layer, the interprocedural contracts
// (hotalloc, goleak) built on the module call graph, and the
// concurrency-and-determinism layer on top of both: guarded-field
// contracts (guardedby, from //peerlint:guardedby field directives),
// may-happen-in-parallel lockset checking of go-spawned goroutines
// (mhp), and replay-purity checking of //peerlint:deterministic call
// trees (determinism).
//
// Usage:
//
//	go run ./cmd/peerlint [-list] [-tests] [-json] [-fix] [-audit]
//	                      [-graph json|dot] [-why file:line] [packages]
//
// Packages default to ./... relative to the module root. The exit code
// is 0 when the tree is clean, 1 when findings are reported, and 2 on
// usage or load errors, matching go vet. -tests also analyzes _test.go
// files (in-package and external test packages). -json prints one JSON
// object per finding, with file paths relative to the module root.
// -fix applies each finding's first suggested fix (non-overlapping,
// gofmt-formatted) and exits 0 when every finding was fixed.
//
// Three inspection modes replace the normal check run:
//
//	-audit          list every //peerlint:allow with its justification,
//	                plus an inventory of guardedby fields and
//	                hotpath/deterministic roots; exit 1 if any allow
//	                carries no reason
//	-graph json|dot dump the module call graph
//	-why file:line  explain a position's contract status: for a
//	                function, the chains from the nearest
//	                //peerlint:hotpath and //peerlint:deterministic
//	                roots, its classified allocation sites, and any
//	                nondeterminism sites; for a //peerlint:guardedby
//	                field, the guarding mutex and what the contract
//	                demands
//
// Individual lines may opt out with an inline justification:
//
//	//peerlint:allow floateq — exact sentinel comparison is intended
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"peerlearn/internal/analysis"
	"peerlearn/internal/analysis/checker"
	"peerlearn/internal/analysis/ctxleak"
	"peerlearn/internal/analysis/determinism"
	"peerlearn/internal/analysis/floateq"
	"peerlearn/internal/analysis/goleak"
	"peerlearn/internal/analysis/guardedby"
	"peerlearn/internal/analysis/hotalloc"
	"peerlearn/internal/analysis/load"
	"peerlearn/internal/analysis/lockheld"
	"peerlearn/internal/analysis/mhp"
	"peerlearn/internal/analysis/modeswitch"
	"peerlearn/internal/analysis/panicfree"
	"peerlearn/internal/analysis/randsource"
	"peerlearn/internal/analysis/unlockpath"
)

// suite is the peerlint analyzer set, alphabetical by name.
var suite = []*analysis.Analyzer{
	ctxleak.Analyzer,
	determinism.Analyzer,
	floateq.Analyzer,
	goleak.Analyzer,
	guardedby.Analyzer,
	hotalloc.Analyzer,
	lockheld.Analyzer,
	mhp.Analyzer,
	modeswitch.Analyzer,
	panicfree.Analyzer,
	randsource.Analyzer,
	unlockpath.Analyzer,
}

// options selects the driver's output and load modes.
type options struct {
	json  bool
	fix   bool
	tests bool
	audit bool
	// graph is "json" or "dot" to dump the call graph instead of
	// checking.
	graph string
	// why is a file:line position to explain instead of checking.
	why string
}

func main() {
	var opts options
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.BoolVar(&opts.json, "json", false, "print findings as JSON, one object per line")
	flag.BoolVar(&opts.fix, "fix", false, "apply suggested fixes in place")
	flag.BoolVar(&opts.tests, "tests", false, "also analyze _test.go files")
	flag.BoolVar(&opts.audit, "audit", false, "list every //peerlint:allow with its reason; fail on reason-less allows")
	flag.StringVar(&opts.graph, "graph", "", "dump the module call graph as `json|dot` and exit")
	flag.StringVar(&opts.why, "why", "", "explain the hot-path status of the function at `file:line` and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: peerlint [-list] [-tests] [-json] [-fix] [-audit] [-graph json|dot] [-why file:line] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "peerlint:", err)
		os.Exit(2)
	}
	os.Exit(run(cwd, flag.Args(), opts, os.Stdout, os.Stderr))
}

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	// File is the path relative to the module root, slash-separated.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Analyzer is the reporting analyzer's name.
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Fixable is true when the finding carries a suggested fix that
	// "peerlint -fix" would apply.
	Fixable bool `json:"fixable,omitempty"`
}

// run loads the patterns relative to the module containing dir,
// applies the suite, prints findings to stdout, and returns the
// process exit code.
func run(dir string, patterns []string, opts options, stdout, stderr io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := load.FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, "peerlint:", err)
		return 2
	}
	loader, err := load.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "peerlint:", err)
		return 2
	}
	loader.Tests = opts.tests
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "peerlint:", err)
		return 2
	}

	switch {
	case opts.audit:
		return runAudit(root, loader.Fset, pkgs, stdout, stderr)
	case opts.graph != "":
		return runGraph(root, loader.Fset, pkgs, opts.graph, stdout, stderr)
	case opts.why != "":
		return runWhy(root, loader.Fset, pkgs, opts.why, stdout, stderr)
	}

	findings, err := checker.Run(loader.Fset, pkgs, suite)
	if err != nil {
		fmt.Fprintln(stderr, "peerlint:", err)
		return 2
	}

	if opts.json {
		enc := json.NewEncoder(stdout)
		for _, f := range findings {
			jf := jsonFinding{
				File:     relPath(root, f.Position.Filename),
				Line:     f.Position.Line,
				Col:      f.Position.Column,
				Analyzer: f.Category,
				Message:  f.Message,
				Fixable:  len(f.Fixes) > 0,
			}
			if err := enc.Encode(jf); err != nil {
				fmt.Fprintln(stderr, "peerlint:", err)
				return 2
			}
		}
	} else {
		checker.Print(stdout, findings)
	}

	if opts.fix {
		return applyFixes(findings, stdout, stderr)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "peerlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}

// applyFixes rewrites the files changed by the findings' suggested
// fixes. Exit code 0 means every finding was fixed (or there were
// none); findings without an applicable fix keep the failure code.
func applyFixes(findings []checker.Finding, stdout, stderr io.Writer) int {
	fixed, applied, err := checker.ApplyFixes(findings)
	if err != nil {
		fmt.Fprintln(stderr, "peerlint:", err)
		return 2
	}
	for name, content := range fixed {
		perm := os.FileMode(0o644)
		if fi, err := os.Stat(name); err == nil {
			perm = fi.Mode().Perm()
		}
		if err := os.WriteFile(name, content, perm); err != nil {
			fmt.Fprintln(stderr, "peerlint:", err)
			return 2
		}
		fmt.Fprintf(stdout, "peerlint: fixed %s\n", name)
	}
	if remaining := len(findings) - applied; remaining > 0 {
		fmt.Fprintf(stderr, "peerlint: applied %d fix(es); %d finding(s) need manual attention\n", applied, remaining)
		return 1
	}
	return 0
}

// relPath renders name relative to the module root with forward
// slashes, falling back to the absolute path for files outside it.
func relPath(root, name string) string {
	rel, err := filepath.Rel(root, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return name
	}
	return filepath.ToSlash(rel)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
