// Command peerlint is the project-specific static-analysis driver: a
// multichecker over the analyzers in internal/analysis/... that guard
// the reproduction's correctness properties — no raw float equality
// (floateq), no global math/rand in library code (randsource),
// exhaustive interaction-mode switches (modeswitch), and no panics in
// library code (panicfree).
//
// Usage:
//
//	go run ./cmd/peerlint [-list] [packages]
//
// Packages default to ./... relative to the module root. The exit code
// is 0 when the tree is clean, 1 when findings are reported, and 2 on
// usage or load errors, matching go vet. Individual lines may opt out
// with an inline justification:
//
//	//peerlint:allow floateq — exact sentinel comparison is intended
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"peerlearn/internal/analysis"
	"peerlearn/internal/analysis/checker"
	"peerlearn/internal/analysis/floateq"
	"peerlearn/internal/analysis/load"
	"peerlearn/internal/analysis/modeswitch"
	"peerlearn/internal/analysis/panicfree"
	"peerlearn/internal/analysis/randsource"
)

// suite is the peerlint analyzer set, alphabetical by name.
var suite = []*analysis.Analyzer{
	floateq.Analyzer,
	modeswitch.Analyzer,
	panicfree.Analyzer,
	randsource.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: peerlint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "peerlint:", err)
		os.Exit(2)
	}
	os.Exit(run(cwd, flag.Args(), os.Stdout, os.Stderr))
}

// run loads the patterns relative to the module containing dir,
// applies the suite, prints findings to stdout, and returns the
// process exit code.
func run(dir string, patterns []string, stdout, stderr io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := load.FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, "peerlint:", err)
		return 2
	}
	loader, err := load.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "peerlint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "peerlint:", err)
		return 2
	}
	findings, err := checker.Run(loader.Fset, pkgs, suite)
	if err != nil {
		fmt.Fprintln(stderr, "peerlint:", err)
		return 2
	}
	checker.Print(stdout, findings)
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "peerlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
