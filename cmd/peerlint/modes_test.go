package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// hotModule is a miniature kernel shape: a hotpath-annotated root whose
// callee tree contains one steady allocation.
var hotModule = map[string]string{
	"go.mod": "module sandbox\n\ngo 1.22\n",
	"lib/lib.go": `package lib

// Apply is the hot entry point.
//
//peerlint:hotpath
func Apply(s []float64) float64 {
	return helper(s)
}

func helper(s []float64) float64 {
	tmp := make([]float64, len(s))
	copy(tmp, s)
	var t float64
	for _, v := range tmp {
		t += v
	}
	return t
}
`,
}

func TestRunHotalloc(t *testing.T) {
	dir := writeModule(t, hotModule)
	var out, errOut strings.Builder
	if code := run(dir, []string{"./..."}, options{}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"hotalloc",
		"hot path must stay allocation-free",
		"make []float64",
		"call chain: Apply → helper",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunHotallocJSON(t *testing.T) {
	dir := writeModule(t, hotModule)
	var out, errOut strings.Builder
	if code := run(dir, []string{"./..."}, options{json: true}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want exactly 1 JSON finding, got %d:\n%s", len(lines), out.String())
	}
	var f jsonFinding
	if err := json.Unmarshal([]byte(lines[0]), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, lines[0])
	}
	if f.Analyzer != "hotalloc" || f.File != "lib/lib.go" {
		t.Errorf("finding = %+v, want hotalloc in lib/lib.go", f)
	}
	if !strings.Contains(f.Message, "call chain: Apply → helper") {
		t.Errorf("JSON message lost the call chain: %q", f.Message)
	}
}

func TestRunHotallocCleanAmortized(t *testing.T) {
	// The workspace idiom — guarded growth and self-append into a
	// persistent buffer — must pass the contract.
	dir := writeModule(t, map[string]string{
		"go.mod": "module sandbox\n\ngo 1.22\n",
		"lib/lib.go": `package lib

type Workspace struct {
	vals []float64
}

// Sum reuses the workspace's scratch buffer.
//
//peerlint:hotpath
func (w *Workspace) Sum(s []float64) float64 {
	vals := w.vals[:0]
	for _, v := range s {
		vals = append(vals, v)
	}
	w.vals = vals
	var t float64
	for _, v := range vals {
		t += v
	}
	return t
}
`,
	})
	var out, errOut strings.Builder
	if code := run(dir, []string{"./..."}, options{}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, want 0 (amortized growth is allowed)\nstdout: %s\nstderr: %s",
			code, out.String(), errOut.String())
	}
}

func TestRunGoleak(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module sandbox\n\ngo 1.22\n",
		"lib/lib.go": `package lib

import "sync"

// Spin leaks: the spawned loop has no exit.
func Spin() {
	go func() {
		for {
			_ = 1
		}
	}()
}

// SkipDone leaks the Done on the early-return path.
func SkipDone(wg *sync.WaitGroup, ch chan int) {
	go func() {
		v, ok := <-ch
		if !ok {
			return
		}
		_ = v
		wg.Done()
	}()
}
`,
	})
	var out, errOut strings.Builder
	if code := run(dir, []string{"./..."}, options{}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"goroutine leak: unbounded for loop",
		"goroutine leak: WaitGroup.Done is skipped",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunAudit(t *testing.T) {
	withReasons := map[string]string{
		"go.mod": "module sandbox\n\ngo 1.22\n",
		"lib/lib.go": `package lib

func Eq(x, y float64) bool {
	//peerlint:allow floateq — exact sentinel comparison is intended
	return x == y
}
`,
	}
	t.Run("clean", func(t *testing.T) {
		dir := writeModule(t, withReasons)
		var out, errOut strings.Builder
		if code := run(dir, []string{"./..."}, options{audit: true}, &out, &errOut); code != 0 {
			t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
		}
		got := out.String()
		for _, want := range []string{
			"lib/lib.go:4: allow floateq — exact sentinel comparison is intended",
			"1 suppression(s), 0 without reason",
		} {
			if !strings.Contains(got, want) {
				t.Errorf("audit output missing %q:\n%s", want, got)
			}
		}
	})
	t.Run("missing reason", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": "module sandbox\n\ngo 1.22\n",
			"lib/lib.go": `package lib

func Eq(x, y float64) bool {
	//peerlint:allow floateq
	return x == y
}
`,
		})
		var out, errOut strings.Builder
		if code := run(dir, []string{"./..."}, options{audit: true}, &out, &errOut); code != 1 {
			t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
		}
		if !strings.Contains(out.String(), "MISSING REASON") {
			t.Errorf("audit output missing MISSING REASON marker:\n%s", out.String())
		}
		if !strings.Contains(out.String(), "1 suppression(s), 1 without reason") {
			t.Errorf("audit summary wrong:\n%s", out.String())
		}
	})
}

func TestRunGraph(t *testing.T) {
	t.Run("json", func(t *testing.T) {
		dir := writeModule(t, hotModule)
		var out, errOut strings.Builder
		if code := run(dir, []string{"./..."}, options{graph: "json"}, &out, &errOut); code != 0 {
			t.Fatalf("exit code = %d, want 0; stderr: %s", code, errOut.String())
		}
		var g struct {
			Nodes []struct {
				Name    string `json:"name"`
				Hotpath bool   `json:"hotpath,omitempty"`
			} `json:"nodes"`
			Edges []struct {
				Caller int    `json:"caller"`
				Callee int    `json:"callee"`
				Kind   string `json:"kind"`
			} `json:"edges"`
		}
		if err := json.Unmarshal([]byte(out.String()), &g); err != nil {
			t.Fatalf("-graph json is not valid JSON: %v\n%s", err, out.String())
		}
		if len(g.Nodes) != 2 || len(g.Edges) != 1 {
			t.Fatalf("graph shape = %d nodes / %d edges, want 2/1:\n%s", len(g.Nodes), len(g.Edges), out.String())
		}
		if !g.Nodes[g.Edges[0].Caller].Hotpath || g.Edges[0].Kind != "static" {
			t.Errorf("edge should be a static call out of the hotpath root:\n%s", out.String())
		}
	})
	t.Run("dot", func(t *testing.T) {
		dir := writeModule(t, hotModule)
		var out, errOut strings.Builder
		if code := run(dir, []string{"./..."}, options{graph: "dot"}, &out, &errOut); code != 0 {
			t.Fatalf("exit code = %d, want 0; stderr: %s", code, errOut.String())
		}
		got := out.String()
		for _, want := range []string{"digraph callgraph {", "Apply", "helper", "->"} {
			if !strings.Contains(got, want) {
				t.Errorf("-graph dot output missing %q:\n%s", want, got)
			}
		}
	})
	t.Run("bad format", func(t *testing.T) {
		dir := writeModule(t, hotModule)
		var out, errOut strings.Builder
		if code := run(dir, []string{"./..."}, options{graph: "xml"}, &out, &errOut); code != 2 {
			t.Fatalf("exit code = %d, want 2", code)
		}
		if !strings.Contains(errOut.String(), "json or dot") {
			t.Errorf("stderr should name the accepted formats:\n%s", errOut.String())
		}
	})
}

func TestRunWhy(t *testing.T) {
	dir := writeModule(t, hotModule)

	t.Run("on the hot path", func(t *testing.T) {
		var out, errOut strings.Builder
		if code := run(dir, []string{"./..."}, options{why: "lib/lib.go:11"}, &out, &errOut); code != 0 {
			t.Fatalf("exit code = %d, want 0; stderr: %s", code, errOut.String())
		}
		got := out.String()
		for _, want := range []string{
			"helper (lib/lib.go:10)",
			"on the hot path: Apply → helper",
			"make []float64",
			"steady",
		} {
			if !strings.Contains(got, want) {
				t.Errorf("-why output missing %q:\n%s", want, got)
			}
		}
	})
	t.Run("root", func(t *testing.T) {
		var out, errOut strings.Builder
		if code := run(dir, []string{"./..."}, options{why: "lib/lib.go:6"}, &out, &errOut); code != 0 {
			t.Fatalf("exit code = %d, want 0; stderr: %s", code, errOut.String())
		}
		if !strings.Contains(out.String(), "//peerlint:hotpath root") {
			t.Errorf("-why on the root should say so:\n%s", out.String())
		}
	})
	t.Run("not found", func(t *testing.T) {
		var out, errOut strings.Builder
		if code := run(dir, []string{"./..."}, options{why: "lib/lib.go:999"}, &out, &errOut); code != 1 {
			t.Fatalf("exit code = %d, want 1", code)
		}
	})
	t.Run("malformed", func(t *testing.T) {
		var out, errOut strings.Builder
		if code := run(dir, []string{"./..."}, options{why: "nonsense"}, &out, &errOut); code != 2 {
			t.Fatalf("exit code = %d, want 2", code)
		}
	})
}

// contractModule exercises the concurrency-and-determinism directives:
// a guardedby field, a deterministic root with a transitive violation,
// and a reasoned allow.
var contractModule = map[string]string{
	"go.mod": "module sandbox\n\ngo 1.22\n",
	"lib/lib.go": `package lib

import (
	"sync"
	"time"
)

type Store struct {
	mu sync.Mutex
	//peerlint:guardedby mu
	n int
}

// Replay is the replay entry point.
//
//peerlint:deterministic
func Replay(s *Store) int {
	return stamp(s)
}

func stamp(s *Store) int {
	//peerlint:allow determinism — test fixture keeps the violation visible to -why
	t := time.Now().Nanosecond()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n = t
	return s.n
}
`,
}

func TestRunAuditDirectiveInventory(t *testing.T) {
	dir := writeModule(t, contractModule)
	var out, errOut strings.Builder
	if code := run(dir, []string{"./..."}, options{audit: true}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"lib/lib.go:11: guardedby n → mu",
		"lib/lib.go:17: deterministic root Replay",
		"1 guarded field(s), 1 contract root(s)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("audit inventory missing %q:\n%s", want, got)
		}
	}
}

func TestRunWhyContracts(t *testing.T) {
	dir := writeModule(t, contractModule)

	t.Run("deterministic root", func(t *testing.T) {
		var out, errOut strings.Builder
		if code := run(dir, []string{"./..."}, options{why: "lib/lib.go:18"}, &out, &errOut); code != 0 {
			t.Fatalf("exit code = %d, want 0; stderr: %s", code, errOut.String())
		}
		if !strings.Contains(out.String(), "//peerlint:deterministic root") {
			t.Errorf("-why on the root should say so:\n%s", out.String())
		}
	})
	t.Run("nondeterminism chain", func(t *testing.T) {
		var out, errOut strings.Builder
		if code := run(dir, []string{"./..."}, options{why: "lib/lib.go:23"}, &out, &errOut); code != 0 {
			t.Fatalf("exit code = %d, want 0; stderr: %s", code, errOut.String())
		}
		got := out.String()
		for _, want := range []string{
			"on a deterministic path: Replay → stamp",
			"time.Now reads the wall clock",
		} {
			if !strings.Contains(got, want) {
				t.Errorf("-why output missing %q:\n%s", want, got)
			}
		}
	})
	t.Run("guarded field", func(t *testing.T) {
		var out, errOut strings.Builder
		if code := run(dir, []string{"./..."}, options{why: "lib/lib.go:11"}, &out, &errOut); code != 0 {
			t.Fatalf("exit code = %d, want 0; stderr: %s", code, errOut.String())
		}
		got := out.String()
		for _, want := range []string{"field n", "guarded by sibling mutex mu"} {
			if !strings.Contains(got, want) {
				t.Errorf("-why output missing %q:\n%s", want, got)
			}
		}
	})
}
