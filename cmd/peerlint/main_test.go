package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway single-package module.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunFlagsViolations(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module sandbox\n\ngo 1.22\n",
		"lib/lib.go": `package lib

import "math/rand"

func Jitter(x, y float64) bool {
	if rand.Float64() > 0.5 {
		panic("no")
	}
	return x == y
}
`,
	})
	var out, errOut strings.Builder
	code := run(dir, []string{"./..."}, options{}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"floateq", "randsource", "panicfree", "lib.go"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module sandbox\n\ngo 1.22\n",
		"lib/lib.go": `package lib

import "math"

// ApproxEqual is the blessed epsilon comparison.
func ApproxEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9
}
`,
	})
	var out, errOut strings.Builder
	if code := run(dir, []string{"./..."}, options{}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}

func TestRunBadPattern(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": "module sandbox\n\ngo 1.22\n"})
	var out, errOut strings.Builder
	if code := run(dir, []string{"./nonexistent"}, options{}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunAllowSuppressionPerAnalyzer(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module sandbox\n\ngo 1.22\n",
		"lib/lib.go": `package lib

// Suppressed carries a justification, so floateq stays quiet.
func Suppressed(x, y float64) bool {
	//peerlint:allow floateq — exact sentinel comparison is intended
	return x == y
}

// Bare has no justification and is flagged.
func Bare(x, y float64) bool {
	return x == y
}
`,
	})
	var out, errOut strings.Builder
	if code := run(dir, []string{"./..."}, options{}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errOut.String())
	}
	got := out.String()
	if n := strings.Count(got, "floateq"); n != 1 {
		t.Errorf("want exactly 1 floateq finding (the unsuppressed one), got %d:\n%s", n, got)
	}
	if !strings.Contains(got, "lib.go:11:") {
		t.Errorf("finding should point at Bare (line 11):\n%s", got)
	}
}

func TestRunTestsMode(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module sandbox\n\ngo 1.22\n",
		"lib/lib.go": `package lib

// Size is trivially clean library code.
func Size(xs []int) int { return len(xs) }
`,
		"lib/lib_test.go": `package lib

func eqInPackage(a, b float64) bool { return a == b }
`,
		"lib/ext_test.go": `package lib_test

func eqExternal(a, b float64) bool { return a == b }
`,
	})
	var out, errOut strings.Builder
	if code := run(dir, []string{"./..."}, options{}, &out, &errOut); code != 0 {
		t.Fatalf("without -tests: exit code = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run(dir, []string{"./..."}, options{tests: true}, &out, &errOut); code != 1 {
		t.Fatalf("with -tests: exit code = %d, want 1; stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"lib_test.go", "ext_test.go"} {
		if !strings.Contains(got, want) {
			t.Errorf("-tests output missing findings from %s:\n%s", want, got)
		}
	}
}

func TestRunJSON(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module sandbox\n\ngo 1.22\n",
		"lib/lib.go": `package lib

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

// Get forgets to unlock: a fixable unlockpath finding.
func (c *Counter) Get() int {
	c.mu.Lock()
	return c.n
}
`,
	})
	var out, errOut strings.Builder
	if code := run(dir, []string{"./..."}, options{json: true}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want exactly 1 JSON finding, got %d:\n%s", len(lines), out.String())
	}
	var f jsonFinding
	if err := json.Unmarshal([]byte(lines[0]), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, lines[0])
	}
	if f.File != "lib/lib.go" {
		t.Errorf("File = %q, want module-relative %q", f.File, "lib/lib.go")
	}
	if f.Line != 12 || f.Analyzer != "unlockpath" || f.Message == "" || !f.Fixable {
		t.Errorf("round-tripped finding off: %+v", f)
	}
}

func TestRunFixIdempotent(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module sandbox\n\ngo 1.22\n",
		"lib/lib.go": `package lib

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

// Get forgets to unlock; -fix inserts the defer.
func (c *Counter) Get() int {
	c.mu.Lock()
	return c.n
}
`,
	})
	libGo := filepath.Join(dir, "lib", "lib.go")

	var out, errOut strings.Builder
	if code := run(dir, []string{"./..."}, options{fix: true}, &out, &errOut); code != 0 {
		t.Fatalf("-fix exit code = %d, want 0 (all findings fixed)\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	fixed, err := os.ReadFile(libGo)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "defer c.mu.Unlock()") {
		t.Fatalf("fix not applied:\n%s", fixed)
	}

	// The fixed tree is clean, and a second -fix run changes nothing.
	out.Reset()
	errOut.Reset()
	if code := run(dir, []string{"./..."}, options{}, &out, &errOut); code != 0 {
		t.Errorf("fixed tree not clean: exit %d\n%s%s", code, out.String(), errOut.String())
	}
	if code := run(dir, []string{"./..."}, options{fix: true}, &out, &errOut); code != 0 {
		t.Errorf("second -fix run: exit %d, want 0", code)
	}
	again, err := os.ReadFile(libGo)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(fixed) {
		t.Errorf("-fix is not idempotent:\n-- first --\n%s\n-- second --\n%s", fixed, again)
	}
}

func TestRunLockheldRegressionShape(t *testing.T) {
	// The PR 2 matchmaker bug: session mutex held across the grouping
	// policy's dynamic Group call. The driver must flag it end to end.
	dir := writeModule(t, map[string]string{
		"go.mod": "module sandbox\n\ngo 1.22\n",
		"mm/mm.go": `package mm

import "sync"

type Grouper interface {
	Group(skills []float64, k int) [][]int
}

type Session struct {
	mu      sync.Mutex
	policy  Grouper
	members map[int]float64
}

func (s *Session) Round(k int) [][]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	skills := make([]float64, 0, len(s.members))
	for _, v := range s.members {
		skills = append(skills, v)
	}
	return s.policy.Group(skills, k)
}
`,
	})
	var out, errOut strings.Builder
	if code := run(dir, []string{"./..."}, options{}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "lockheld") || !strings.Contains(got, "dynamic dispatch to interface method Group") {
		t.Errorf("PR 2 regression shape not flagged:\n%s", got)
	}
}

func TestRunGuardedByMHPRegressionShape(t *testing.T) {
	// The other half of the PR 2 matchmaker bug: roster state mutated
	// from a spawned goroutine with no lock. The guardedby contract
	// flags the unguarded field write, and mhp flags the same write as
	// racing the spawner — reintroducing the bug must trip both.
	dir := writeModule(t, map[string]string{
		"go.mod": "module sandbox\n\ngo 1.22\n",
		"mm/mm.go": `package mm

import "sync"

type Session struct {
	mu sync.Mutex
	//peerlint:guardedby mu
	members map[int]float64
}

func (s *Session) JoinAsync(id int, skill float64) {
	go func() {
		s.members[id] = skill
	}()
}

func (s *Session) Join(id int, skill float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.members[id] = skill
}
`,
	})
	var out, errOut strings.Builder
	if code := run(dir, []string{"./..."}, options{}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "guardedby") || !strings.Contains(got, "requires s.mu") {
		t.Errorf("unguarded roster write not flagged by guardedby:\n%s", got)
	}
	if !strings.Contains(got, "mhp") || !strings.Contains(got, "go-spawned goroutine") {
		t.Errorf("spawned unsynchronized write not flagged by mhp:\n%s", got)
	}
	// The locked Join is clean: both findings point at the async write.
	if n := strings.Count(got, "mm.go:13:"); n != 2 {
		t.Errorf("want both findings on the goroutine write (line 13), got:\n%s", got)
	}
}

func TestRunDeterminismWALEncoderShape(t *testing.T) {
	// The seeded replay bug: a WAL-style snapshot encoder walking the
	// live map directly, so identical states serialize as different
	// byte streams and recovery's bit-exact verification rejects the
	// log. The determinism contract must flag it end to end.
	dir := writeModule(t, map[string]string{
		"go.mod": "module sandbox\n\ngo 1.22\n",
		"wal/wal.go": `package wal

import (
	"fmt"
	"io"
)

//peerlint:deterministic
func Encode(w io.Writer, gains map[int64]float64) {
	for id, g := range gains {
		fmt.Fprintf(w, "%d %x\n", id, g)
	}
}
`,
	})
	var out, errOut strings.Builder
	if code := run(dir, []string{"./..."}, options{}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "determinism") || !strings.Contains(got, "Fprintf inside map iteration") {
		t.Errorf("map-order leak into encoder not flagged:\n%s", got)
	}
}
