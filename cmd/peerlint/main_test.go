package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway single-package module.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunFlagsViolations(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module sandbox\n\ngo 1.22\n",
		"lib/lib.go": `package lib

import "math/rand"

func Jitter(x, y float64) bool {
	if rand.Float64() > 0.5 {
		panic("no")
	}
	return x == y
}
`,
	})
	var out, errOut strings.Builder
	code := run(dir, []string{"./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"floateq", "randsource", "panicfree", "lib.go"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module sandbox\n\ngo 1.22\n",
		"lib/lib.go": `package lib

import "math"

// ApproxEqual is the blessed epsilon comparison.
func ApproxEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9
}
`,
	})
	var out, errOut strings.Builder
	if code := run(dir, []string{"./..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}

func TestRunBadPattern(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": "module sandbox\n\ngo 1.22\n"})
	var out, errOut strings.Builder
	if code := run(dir, []string{"./nonexistent"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
