// The driver's inspection modes: -audit (suppression inventory),
// -graph (call graph dump), -why (hot-path explanation). Each replaces
// the normal check run and owns its exit-code contract.
package main

import (
	"fmt"
	"go/token"
	"io"
	"sort"
	"strconv"
	"strings"

	"peerlearn/internal/analysis"
	"peerlearn/internal/analysis/allocfacts"
	"peerlearn/internal/analysis/callgraph"
	"peerlearn/internal/analysis/checker"
	"peerlearn/internal/analysis/determinism"
	"peerlearn/internal/analysis/hotalloc"
	"peerlearn/internal/analysis/load"
)

// runAudit lists every //peerlint:allow in the loaded packages with its
// justification and returns 1 when any allow carries none — the gate
// that keeps suppressions from accumulating without review.
func runAudit(root string, fset *token.FileSet, pkgs []*load.Package, stdout, stderr io.Writer) int {
	type entry struct {
		pos   token.Position
		allow analysis.Allow
	}
	seen := make(map[string]bool)
	var entries []entry
	for _, pkg := range pkgs {
		for _, a := range analysis.ParseAllows(fset, pkg.Files) {
			// Test-variant packages re-parse the base files; dedupe by
			// printed position.
			key := a.Position.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			entries = append(entries, entry{pos: a.Position, allow: a})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].pos, entries[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})

	missing := 0
	for _, e := range entries {
		loc := fmt.Sprintf("%s:%d", relPath(root, e.pos.Filename), e.pos.Line)
		names := strings.Join(e.allow.Analyzers, ",")
		if e.allow.Reason == "" {
			missing++
			fmt.Fprintf(stdout, "%s: allow %s — MISSING REASON\n", loc, names)
			continue
		}
		fmt.Fprintf(stdout, "%s: allow %s — %s\n", loc, names, e.allow.Reason)
	}
	guarded, roots := auditDirectives(root, fset, pkgs, stdout)
	fmt.Fprintf(stdout, "peerlint: %d suppression(s), %d without reason; %d guarded field(s), %d contract root(s)\n",
		len(entries), missing, guarded, roots)
	if missing > 0 {
		fmt.Fprintf(stderr, "peerlint: %d suppression(s) lack a justification — add one after an em dash or --\n", missing)
		return 1
	}
	return 0
}

// auditDirectives inventories the module's contract directives — every
// //peerlint:guardedby field and every //peerlint:hotpath and
// //peerlint:deterministic root — so a review of the suppression list
// also sees what the suppressions are suppressed against. It returns
// the guarded-field and root counts.
func auditDirectives(root string, fset *token.FileSet, pkgs []*load.Package, stdout io.Writer) (guarded, roots int) {
	type entry struct {
		pos  token.Position
		desc string
	}
	var entries []entry
	mpkgs := checker.ModulePackages(pkgs)
	for _, pkg := range mpkgs {
		for _, gf := range analysis.GuardedFields(pkg.Files, pkg.TypesInfo) {
			e := entry{pos: fset.Position(gf.Field.Pos())}
			if gf.Err != "" {
				e.desc = fmt.Sprintf("guardedby %s — MALFORMED: %s", gf.Field.Name(), gf.Err)
			} else {
				e.desc = fmt.Sprintf("guardedby %s → %s", gf.Field.Name(), gf.Guard)
			}
			guarded++
			entries = append(entries, e)
		}
	}
	g := callgraph.Build(fset, mpkgs)
	for _, n := range g.Nodes {
		if n.Hotpath {
			roots++
			entries = append(entries, entry{pos: fset.Position(n.Decl.Pos()),
				desc: "hotpath root " + n.Name()})
		}
		if n.Deterministic {
			roots++
			entries = append(entries, entry{pos: fset.Position(n.Decl.Pos()),
				desc: "deterministic root " + n.Name()})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].pos, entries[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, e := range entries {
		fmt.Fprintf(stdout, "%s:%d: %s\n", relPath(root, e.pos.Filename), e.pos.Line, e.desc)
	}
	return guarded, roots
}

// runGraph dumps the module call graph.
func runGraph(root string, fset *token.FileSet, pkgs []*load.Package, format string, stdout, stderr io.Writer) int {
	g := callgraph.Build(fset, checker.ModulePackages(pkgs))
	switch format {
	case "json":
		rel := func(p token.Position) string {
			return fmt.Sprintf("%s:%d:%d", relPath(root, p.Filename), p.Line, p.Column)
		}
		if err := g.JSON(stdout, rel); err != nil {
			fmt.Fprintln(stderr, "peerlint:", err)
			return 2
		}
	case "dot":
		if err := g.DOT(stdout); err != nil {
			fmt.Fprintln(stderr, "peerlint:", err)
			return 2
		}
	default:
		fmt.Fprintf(stderr, "peerlint: -graph wants json or dot, got %q\n", format)
		return 2
	}
	return 0
}

// runWhy explains the contract status of the position: for a function,
// the chain from the nearest //peerlint:hotpath and
// //peerlint:deterministic roots (or the fact that none reaches it),
// its classified allocation sites, and any nondeterminism sites; for a
// //peerlint:guardedby field, the guarding mutex and what the contract
// demands. Exit codes: 0 explained, 1 position not found, 2 malformed
// position.
func runWhy(root string, fset *token.FileSet, pkgs []*load.Package, where string, stdout, stderr io.Writer) int {
	file, line, err := parsePos(where)
	if err != nil {
		fmt.Fprintln(stderr, "peerlint:", err)
		return 2
	}

	g := callgraph.Build(fset, checker.ModulePackages(pkgs))
	node := nodeAt(fset, g, file, line)
	if node == nil {
		if whyGuardedField(root, fset, pkgs, file, line, stdout) {
			return 0
		}
		fmt.Fprintf(stderr, "peerlint: no module function or guarded field at %s:%d\n", file, line)
		return 1
	}
	facts := allocfacts.Compute(g)
	chains := hotalloc.Chains(g)

	pos := fset.Position(node.Decl.Pos())
	fmt.Fprintf(stdout, "%s (%s:%d)\n", node.Name(), relPath(root, pos.Filename), pos.Line)

	switch chain, hot := chains[node]; {
	case !hot:
		fmt.Fprintf(stdout, "  not reachable from any //peerlint:hotpath root — hotalloc does not constrain it\n")
	case len(chain) == 1:
		fmt.Fprintf(stdout, "  //peerlint:hotpath root — its whole module call tree must be allocation-free\n")
	default:
		names := make([]string, len(chain))
		for i, n := range chain {
			names[i] = n.Name()
		}
		fmt.Fprintf(stdout, "  on the hot path: %s\n", strings.Join(names, " → "))
	}

	detChain, det := determinism.Chains(g)[node]
	switch {
	case !det:
		fmt.Fprintf(stdout, "  not reachable from any //peerlint:deterministic root — determinism does not constrain it\n")
	case len(detChain) == 1:
		fmt.Fprintf(stdout, "  //peerlint:deterministic root — its whole module call tree must be replay-pure\n")
	default:
		names := make([]string, len(detChain))
		for i, n := range detChain {
			names[i] = n.Name()
		}
		fmt.Fprintf(stdout, "  on a deterministic path: %s\n", strings.Join(names, " → "))
	}
	if det {
		for _, f := range determinism.Check(g) {
			if f.Owner != node {
				continue
			}
			p := fset.Position(f.Pos)
			fmt.Fprintf(stdout, "    %s:%d:%d: %s\n", relPath(root, p.Filename), p.Line, p.Column, f.What)
		}
	}

	sum := facts.Summary(node)
	if len(sum.Sites) == 0 {
		fmt.Fprintf(stdout, "  no local allocation sites\n")
	} else {
		fmt.Fprintf(stdout, "  allocation sites:\n")
		for _, s := range sum.Sites {
			p := fset.Position(s.Pos)
			fmt.Fprintf(stdout, "    %s:%d:%d: %s (%s)\n", relPath(root, p.Filename), p.Line, p.Column, s.What, s.Class)
		}
	}
	if transitive := facts.MayAllocate(node); transitive && len(sum.Steady()) == 0 {
		fmt.Fprintf(stdout, "  a module callee may allocate — run the hotalloc analyzer for the offending chain\n")
	}
	return 0
}

// whyGuardedField explains a //peerlint:guardedby field at file:line,
// returning false when the position names no annotated field.
func whyGuardedField(root string, fset *token.FileSet, pkgs []*load.Package, file string, line int, stdout io.Writer) bool {
	file = strings.TrimPrefix(file, "./")
	for _, pkg := range checker.ModulePackages(pkgs) {
		for _, gf := range analysis.GuardedFields(pkg.Files, pkg.TypesInfo) {
			pos := fset.Position(gf.Field.Pos())
			if !strings.HasSuffix(pos.Filename, file) || pos.Line != line {
				continue
			}
			fmt.Fprintf(stdout, "field %s (%s:%d)\n", gf.Field.Name(), relPath(root, pos.Filename), pos.Line)
			if gf.Err != "" {
				fmt.Fprintf(stdout, "  //peerlint:guardedby directive is malformed: %s\n", gf.Err)
				return true
			}
			kind := "sibling mutex"
			if gf.GuardEmbedded {
				kind = "embedded mutex"
			}
			fmt.Fprintf(stdout, "  guarded by %s %s: every read and write must hold it, except in\n", kind, gf.Guard)
			fmt.Fprintf(stdout, "  the constructor before the value escapes; under an RWMutex, writes\n")
			fmt.Fprintf(stdout, "  need the write lock (guardedby enforces this module-wide)\n")
			return true
		}
	}
	return false
}

// parsePos splits "file.go:123" (an optional trailing :col is
// accepted and ignored).
func parsePos(s string) (file string, line int, err error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 {
		return "", 0, fmt.Errorf("-why wants file:line, got %q", s)
	}
	// A trailing column is allowed: file:line:col.
	if len(parts) >= 3 {
		if _, colErr := strconv.Atoi(parts[len(parts)-1]); colErr == nil {
			if l, lineErr := strconv.Atoi(parts[len(parts)-2]); lineErr == nil {
				return strings.Join(parts[:len(parts)-2], ":"), l, nil
			}
		}
	}
	line, err = strconv.Atoi(parts[len(parts)-1])
	if err != nil {
		return "", 0, fmt.Errorf("-why wants file:line, got %q", s)
	}
	return strings.Join(parts[:len(parts)-1], ":"), line, nil
}

// nodeAt finds the graph node whose declaration spans file:line. The
// file matches by suffix, so both absolute and module-relative paths
// work.
func nodeAt(fset *token.FileSet, g *callgraph.Graph, file string, line int) *callgraph.Node {
	file = strings.TrimPrefix(file, "./")
	for _, n := range g.Nodes {
		start := fset.Position(n.Decl.Pos())
		end := fset.Position(n.Decl.End())
		if !strings.HasSuffix(start.Filename, file) {
			continue
		}
		if line >= start.Line && line <= end.Line {
			return n
		}
	}
	return nil
}
