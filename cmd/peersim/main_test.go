package main

import (
	"strings"
	"testing"
)

func TestRunSweepPasses(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 1, 4, 200, "all", 3, 4, "star", 0.5, true, false, true); err != nil {
		t.Fatalf("sweep failed: %v\n%s", err, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "4/4 runs passed") {
		t.Fatalf("missing pass summary:\n%s", out)
	}
	if strings.Count(out, "seed=") != 4 {
		t.Fatalf("want one -v summary line per run:\n%s", out)
	}
}

func TestRunCliqueAndFaultSubset(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 10, 2, 150, "panic,staleseat", 2, 3, "clique", 0.3, false, false, false); err != nil {
		t.Fatalf("clique sweep failed: %v\n%s", err, b.String())
	}
}

func TestDumpIsByteIdenticalAcrossCalls(t *testing.T) {
	dumpOnce := func() string {
		var b strings.Builder
		if err := run(&b, 5, 2, 100, "all", 3, 4, "star", 0.5, false, true, false); err != nil {
			t.Fatalf("dump failed: %v", err)
		}
		return b.String()
	}
	a, c := dumpOnce(), dumpOnce()
	if a != c {
		t.Fatal("schedule dump is not byte-identical across replays of the same seed")
	}
	if !strings.Contains(a, "# seed 5") || !strings.Contains(a, "# seed 6") {
		t.Fatalf("dump missing per-seed headers:\n%s", a)
	}
}

func TestRunErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		call func() error
	}{
		{"bad fault", func() error {
			return run(&strings.Builder{}, 1, 1, 50, "meteor", 3, 4, "star", 0.5, false, false, false)
		}},
		{"bad mode", func() error {
			return run(&strings.Builder{}, 1, 1, 50, "all", 3, 4, "ring", 0.5, false, false, false)
		}},
		{"no runs", func() error {
			return run(&strings.Builder{}, 1, 0, 50, "all", 3, 4, "star", 0.5, false, false, false)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.call(); err == nil {
				t.Fatal("expected an error")
			}
		})
	}
}
