// Command peersim runs the deterministic simulation harness
// (internal/simtest) over the serving layer: seeded adversarial
// schedules of joins, leaves, round triggers, and scrapes — with
// injected panics, invalid groupings, forced optimistic-lock losses,
// dropped and delayed round triggers, and churn storms — executed
// against the real matchmaker and HTTP session handlers while global
// invariants are checked.
//
//	peersim [-seed 1] [-runs 20] [-ops 400] [-faults all]
//	        [-group-size 3] [-clients 4] [-mode star] [-rate 0.5]
//	        [-shrink] [-dump] [-v]
//
// Runs r ∈ [0, runs) use seed+r. Every run is a pure function of its
// seed: a failure report prints the seed, and rerunning peersim with
// that seed (and the same knobs) replays the byte-identical schedule.
// With -shrink a failing schedule is first minimized greedily, so the
// report shows the smallest op sequence that still breaks an
// invariant. Exit status is 1 if any run failed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"peerlearn/internal/core"
	"peerlearn/internal/simtest"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "base seed; run r uses seed+r")
		runs      = flag.Int("runs", 20, "number of independent simulation runs")
		ops       = flag.Int("ops", 400, "schedule length per run")
		faults    = flag.String("faults", "all", "comma-separated fault kinds, or all/none ("+simtest.FaultNames()+")")
		groupSize = flag.Int("group-size", 3, "cohort group size")
		clients   = flag.Int("clients", 4, "simulated concurrent clients")
		modeName  = flag.String("mode", "star", "interaction mode: star or clique")
		rate      = flag.Float64("rate", 0.5, "linear learning rate in (0,1]")
		shrink    = flag.Bool("shrink", true, "minimize failing schedules before reporting")
		dump      = flag.Bool("dump", false, "print each run's generated schedule and exit (replay aid)")
		verbose   = flag.Bool("v", false, "print a summary line per run")
	)
	flag.Parse()

	if err := run(os.Stdout, *seed, *runs, *ops, *faults, *groupSize, *clients, *modeName, *rate, *shrink, *dump, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "peersim:", err)
		os.Exit(1)
	}
}

// run executes the sweep; any invariant violation (or bad flag) is an
// error.
func run(w io.Writer, seed int64, runs, ops int, faultSpec string, groupSize, clients int, modeName string, rate float64, shrink, dump, verbose bool) error {
	faults, err := simtest.ParseFaults(faultSpec)
	if err != nil {
		return err
	}
	mode, err := core.ParseMode(modeName)
	if err != nil {
		return err
	}
	if runs < 1 {
		return fmt.Errorf("need at least one run, got %d", runs)
	}

	failed := 0
	totalRounds := 0
	for r := 0; r < runs; r++ {
		cfg := simtest.Config{
			Seed:      seed + int64(r),
			Ops:       ops,
			Clients:   clients,
			GroupSize: groupSize,
			Mode:      mode,
			Rate:      rate,
			Faults:    faults,
		}
		schedule := simtest.Generate(cfg)
		if dump {
			fmt.Fprintf(w, "# seed %d\n%s", cfg.Seed, simtest.FormatOps(schedule))
			continue
		}
		rep := simtest.Run(cfg, schedule)
		totalRounds += rep.Rounds
		if verbose || rep.Failed() {
			fmt.Fprintln(w, rep.Summary())
		}
		if !rep.Failed() {
			continue
		}
		failed++
		for _, v := range rep.Failures {
			fmt.Fprintln(w, "  violation:", v)
		}
		if shrink {
			min := simtest.Shrink(schedule, func(s []simtest.Op) bool {
				return simtest.Run(cfg, s).Failed()
			}, 0)
			fmt.Fprintf(w, "  minimized to %d ops (from %d):\n%s", len(min), len(schedule), simtest.FormatOps(min))
		}
		fmt.Fprintf(w, "  replay: peersim -seed %d -runs 1 -ops %d -faults %s -group-size %d -clients %d -mode %s -rate %g\n",
			cfg.Seed, ops, faultSpec, groupSize, clients, modeName, rate)
	}
	if dump {
		return nil
	}
	fmt.Fprintf(w, "peersim: %d/%d runs passed, %d rounds simulated (seeds %d..%d, faults %s)\n",
		runs-failed, runs, totalRounds, seed, seed+int64(runs)-1, faultSpec)
	if failed > 0 {
		return fmt.Errorf("%d of %d runs violated invariants", failed, runs)
	}
	return nil
}
