package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchArgs is the fastest possible full pass: quick drops the 100k
// entries and the 1ms budget makes every measurement a warm-up plus a
// single timed iteration. The resulting numbers are noise — the tests
// only assert on report structure and exit codes, never on timings.
var benchArgs = []string{"-quick", "-benchtime", "1ms"}

// writeBaseline crafts a baseline report that assigns nsPerOp to every
// known entry name, so a -compare run matches each shared entry.
func writeBaseline(t *testing.T, nsPerOp float64) string {
	t.Helper()
	names := []string{
		"dygroups-star-run-1k", "dygroups-star-run-10k",
		"dygroups-clique-run-1k", "dygroups-clique-run-10k",
		"random-run-10k", "kmeans-run-10k", "lpa-run-10k", "percentile-run-10k",
		"apply-round-star-1k", "apply-round-star-10k",
		"apply-round-clique-1k", "apply-round-clique-10k",
		"aggregate-gain-star-10k",
		"anneal-star-1k", "anneal-star-10k",
		"anneal-clique-1k", "anneal-clique-10k",
		"anneal-generic-1k",
	}
	base := Report{GoVersion: "crafted", Quick: true}
	for _, n := range names {
		base.Entries = append(base.Entries, Entry{Name: n, NsPerOp: nsPerOp})
	}
	raw, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunQuickOutCompareRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick sweep")
	}
	// A generously slow baseline: nothing can regress against it, so
	// -out and -compare succeed in one sweep.
	baseline := writeBaseline(t, 1e15)
	outPath := filepath.Join(t.TempDir(), "report.json")

	var stdout, stderr strings.Builder
	args := append(append([]string{}, benchArgs...), "-out", outPath, "-compare", baseline)
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("-out should keep stdout empty, got:\n%s", stdout.String())
	}

	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("-out did not write the report: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if !rep.Quick {
		t.Error("report should record quick=true")
	}
	byName := make(map[string]Entry, len(rep.Entries))
	for _, e := range rep.Entries {
		byName[e.Name] = e
		if e.NsPerOp <= 0 {
			t.Errorf("%s: ns/op = %v, want > 0", e.Name, e.NsPerOp)
		}
		if e.N >= 100000 {
			t.Errorf("%s: quick mode must drop the n=100k entries (n=%d)", e.Name, e.N)
		}
	}
	for _, want := range []string{
		"dygroups-star-run-10k", "apply-round-clique-1k", "anneal-star-10k", "aggregate-gain-star-10k",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("report missing entry %q", want)
		}
	}
	//peerlint:allow floateq — the seed constant must survive the JSON round-trip bit-exactly
	if e := byName["anneal-star-10k"]; e.BeforeNsPerOp != seedNsPerOp["anneal-star-10k"] {
		t.Errorf("before_ns_per_op = %v, want seed %v", e.BeforeNsPerOp, seedNsPerOp["anneal-star-10k"])
	}
	// Every compared entry should have been reported to stderr.
	if !strings.Contains(stderr.String(), "compare") || strings.Contains(stderr.String(), "REGRESSION") {
		t.Errorf("compare against the slow baseline should be all ok:\n%s", stderr.String())
	}
}

func TestRunCompareFlagsRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick sweep")
	}
	// An impossibly fast baseline: every shared entry regresses, even
	// with a huge tolerance.
	baseline := writeBaseline(t, 0.001)

	var stdout, stderr strings.Builder
	args := append(append([]string{}, benchArgs...), "-compare", baseline, "-max-regress", "10")
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1 (regression)\nstderr: %s", code, stderr.String())
	}
	got := stderr.String()
	if !strings.Contains(got, "REGRESSION") || !strings.Contains(got, "regressed more than") {
		t.Errorf("stderr should name the regressions:\n%s", got)
	}
	// The report still lands on stdout before the comparison fails.
	var rep Report
	if err := json.Unmarshal([]byte(stdout.String()), &rep); err != nil {
		t.Errorf("stdout report is not valid JSON: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunMissingBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick sweep")
	}
	var stdout, stderr strings.Builder
	args := append(append([]string{}, benchArgs...), "-compare", filepath.Join(t.TempDir(), "nope.json"))
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "read baseline") {
		t.Errorf("stderr should explain the missing baseline:\n%s", stderr.String())
	}
}
