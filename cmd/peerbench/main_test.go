package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchArgs is the fastest possible full pass: quick drops the 100k
// entries and the 1ms budget makes every measurement a warm-up plus a
// single timed iteration. The resulting numbers are noise — the tests
// only assert on report structure and exit codes, never on timings.
var benchArgs = []string{"-quick", "-benchtime", "1ms"}

// writeBaseline crafts a baseline report that assigns nsPerOp to every
// known entry name, so a -compare run matches each shared entry.
func writeBaseline(t *testing.T, nsPerOp float64) string {
	t.Helper()
	names := []string{
		"dygroups-star-run-1k", "dygroups-star-run-10k",
		"dygroups-clique-run-1k", "dygroups-clique-run-10k",
		"random-run-10k", "kmeans-run-10k", "lpa-run-10k", "percentile-run-10k",
		"apply-round-star-1k", "apply-round-star-10k",
		"apply-round-clique-1k", "apply-round-clique-10k",
		"aggregate-gain-star-10k",
		"anneal-star-1k", "anneal-star-10k",
		"anneal-clique-1k", "anneal-clique-10k",
		"anneal-generic-1k",
		"anneal-par-star-10k", "anneal-par-clique-10k",
	}
	base := Report{GoVersion: "crafted", Quick: true}
	for _, n := range names {
		base.Entries = append(base.Entries, Entry{Name: n, NsPerOp: nsPerOp})
	}
	raw, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunQuickOutCompareRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick sweep")
	}
	// A generously slow baseline: nothing can regress against it, so
	// -out and -compare succeed in one sweep.
	baseline := writeBaseline(t, 1e15)
	outPath := filepath.Join(t.TempDir(), "report.json")

	var stdout, stderr strings.Builder
	args := append(append([]string{}, benchArgs...), "-out", outPath, "-compare", baseline)
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("-out should keep stdout empty, got:\n%s", stdout.String())
	}

	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("-out did not write the report: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if !rep.Quick {
		t.Error("report should record quick=true")
	}
	byName := make(map[string]Entry, len(rep.Entries))
	for _, e := range rep.Entries {
		byName[e.Name] = e
		if e.NsPerOp <= 0 {
			t.Errorf("%s: ns/op = %v, want > 0", e.Name, e.NsPerOp)
		}
		if e.N >= 100000 {
			t.Errorf("%s: quick mode must drop the n=100k entries (n=%d)", e.Name, e.N)
		}
	}
	for _, want := range []string{
		"dygroups-star-run-10k", "apply-round-clique-1k", "anneal-star-10k", "aggregate-gain-star-10k",
		"anneal-par-star-10k", "anneal-par-clique-10k",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("report missing entry %q", want)
		}
	}
	// Entries with a serial-vs-parallel bit-equality check must record
	// that the check ran and passed — a false here can only mean the
	// report bypassed the parity assertion.
	for _, want := range []string{
		"anneal-par-star-10k", "anneal-par-clique-10k",
		"apply-round-star-1k", "apply-round-clique-10k",
	} {
		if e, ok := byName[want]; ok && !e.SerialParallelGainEqual {
			t.Errorf("%s: serial_parallel_gain_equal should be true", want)
		}
	}
	//peerlint:allow floateq — the seed constant must survive the JSON round-trip bit-exactly
	if e := byName["anneal-star-10k"]; e.BeforeNsPerOp != seedNsPerOp["anneal-star-10k"] {
		t.Errorf("before_ns_per_op = %v, want seed %v", e.BeforeNsPerOp, seedNsPerOp["anneal-star-10k"])
	}
	// Every compared entry should have been reported to stderr.
	if !strings.Contains(stderr.String(), "compare") || strings.Contains(stderr.String(), "REGRESSION") {
		t.Errorf("compare against the slow baseline should be all ok:\n%s", stderr.String())
	}
}

// TestRunCompareWarnsOnMissingBaselineEntry drops one known entry from
// the baseline and checks the comparison calls it out on stderr without
// failing the run — new entries should be loud but not fatal until the
// committed baseline is refreshed.
func TestRunCompareWarnsOnMissingBaselineEntry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick sweep")
	}
	baseline := writeBaseline(t, 1e15)
	raw, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	const dropped = "anneal-par-star-10k"
	kept := base.Entries[:0]
	for _, e := range base.Entries {
		if e.Name != dropped {
			kept = append(kept, e)
		}
	}
	base.Entries = kept
	if raw, err = json.MarshalIndent(base, "", "  "); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr strings.Builder
	args := append(append([]string{}, benchArgs...), "-compare", baseline)
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0 (missing baseline entry is a warning)\nstderr: %s", code, stderr.String())
	}
	got := stderr.String()
	if !strings.Contains(got, "WARNING") || !strings.Contains(got, dropped) {
		t.Errorf("stderr should warn about the baseline-missing entry %q:\n%s", dropped, got)
	}
}

func TestRunCompareFlagsRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick sweep")
	}
	// An impossibly fast baseline: every shared entry regresses, even
	// with a huge tolerance.
	baseline := writeBaseline(t, 0.001)

	var stdout, stderr strings.Builder
	args := append(append([]string{}, benchArgs...), "-compare", baseline, "-max-regress", "10")
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1 (regression)\nstderr: %s", code, stderr.String())
	}
	got := stderr.String()
	if !strings.Contains(got, "REGRESSION") || !strings.Contains(got, "regressed more than") {
		t.Errorf("stderr should name the regressions:\n%s", got)
	}
	// The report still lands on stdout before the comparison fails.
	var rep Report
	if err := json.Unmarshal([]byte(stdout.String()), &rep); err != nil {
		t.Errorf("stdout report is not valid JSON: %v", err)
	}
}

func TestMergeBest(t *testing.T) {
	dst := &Report{Entries: []Entry{
		{Name: "a", NsPerOp: 100, AllocsPerOp: 1},
		{Name: "b", NsPerOp: 50},
	}}
	src := &Report{Entries: []Entry{
		{Name: "a", NsPerOp: 80, AllocsPerOp: 2},
		{Name: "b", NsPerOp: 60},
		{Name: "c", NsPerOp: 10},
	}}
	mergeBest(dst, src)
	byName := make(map[string]Entry, len(dst.Entries))
	for _, e := range dst.Entries {
		byName[e.Name] = e
	}
	// The faster src entry replaces dst wholesale (allocs ride along).
	if e := byName["a"]; e.NsPerOp != 80 || e.AllocsPerOp != 2 {
		t.Errorf("a = %+v, want the faster src measurement (80 ns, 2 allocs)", e)
	}
	if e := byName["b"]; e.NsPerOp != 50 {
		t.Errorf("b = %.0f ns, want the faster dst measurement (50)", e.NsPerOp)
	}
	if e, ok := byName["c"]; !ok || e.NsPerOp != 10 {
		t.Errorf("c should be appended from src, got %+v (present=%v)", e, ok)
	}
	if len(dst.Entries) != 3 {
		t.Errorf("merged entry count = %d, want 3", len(dst.Entries))
	}
}

// TestRunOnlyPriorFoldsIntoReport re-measures a single entry with -only
// and folds it into a crafted prior report with -prior: the re-measured
// entry must displace its (absurdly slow) prior counterpart while every
// unmeasured prior entry survives untouched.
func TestRunOnlyPriorFoldsIntoReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a (filtered) sweep")
	}
	const remeasured = "apply-round-star-1k"
	prior := writeBaseline(t, 1e15)
	outPath := filepath.Join(t.TempDir(), "merged.json")

	var stdout, stderr strings.Builder
	args := append(append([]string{}, benchArgs...),
		"-only", "^"+remeasured+"$", "-prior", prior, "-out", outPath)
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("merged report is not valid JSON: %v", err)
	}
	byName := make(map[string]Entry, len(rep.Entries))
	for _, e := range rep.Entries {
		byName[e.Name] = e
	}
	e, ok := byName[remeasured]
	if !ok {
		t.Fatalf("merged report missing the re-measured entry %q", remeasured)
	}
	if e.NsPerOp >= 1e15 {
		t.Errorf("%s: ns/op = %v — the fresh measurement should displace the slow prior one", remeasured, e.NsPerOp)
	}
	// A name the -only filter skipped keeps its prior measurement.
	if e := byName["anneal-star-10k"]; e.NsPerOp != 1e15 {
		t.Errorf("anneal-star-10k: ns/op = %v, want the untouched prior value 1e15", e.NsPerOp)
	}
}

func TestRunBadOnlyPattern(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-only", "("}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "bad -only pattern") {
		t.Errorf("stderr should explain the bad pattern:\n%s", stderr.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunMissingBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick sweep")
	}
	var stdout, stderr strings.Builder
	args := append(append([]string{}, benchArgs...), "-compare", filepath.Join(t.TempDir(), "nope.json"))
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "read baseline") {
		t.Errorf("stderr should explain the missing baseline:\n%s", stderr.String())
	}
}
