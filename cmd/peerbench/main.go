// Command peerbench is the repository's performance-regression
// harness: it drives the hot paths — DyGroups Star/Clique simulations,
// the baselines, workspace round application (serial vs parallel), the
// simulated annealer, and the sharded durable session store — through
// a self-contained measurement loop and emits a JSON report (committed
// as BENCH_9.json at the repo root) with ns/op, allocs/op, bytes/op,
// and the parallel-vs-serial speedup. The full sweep includes the
// n=10⁶ raw-speed entries (α=16 DyGroups runs and the deterministic
// parallel annealer); -quick drops everything above n=10k.
//
// Usage:
//
//	peerbench                      # full sweep, JSON to stdout
//	peerbench -quick               # CI-sized sweep (drops the n≥100k entries)
//	peerbench -out BENCH_9.json    # refresh the committed baseline
//	peerbench -quick -compare BENCH_9.json
//	                               # fail (exit 1) if any shared entry
//	                               # regresses ns/op by > -max-regress
//	peerbench -only 'anneal-.*-10k' -prior BENCH_9.json -out BENCH_9.json
//	                               # re-measure matching entries and fold
//	                               # them into the committed report,
//	                               # keeping each entry's fastest run
//
// Entries carry a before_ns_per_op field where a pre-optimization
// (seed) measurement exists, so the committed file doubles as the
// before/after record of the PR that introduced it. See
// docs/PERFORMANCE.md for how to read and refresh the numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"runtime"
	"sync"
	"time"

	"peerlearn"
	"peerlearn/internal/baselines"
	"peerlearn/internal/core"
	"peerlearn/internal/dist"
	"peerlearn/internal/server"
)

// Entry is one benchmark result in the report.
type Entry struct {
	Name            string  `json:"name"`
	N               int     `json:"n"`
	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	BytesPerOp      float64 `json:"bytes_per_op"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
	BeforeNsPerOp   float64 `json:"before_ns_per_op,omitempty"`
	// SerialParallelGainEqual records that the entry's parallel
	// execution was checked bit-for-bit against its serial execution
	// (same inputs, Workers=1 vs forced fan-out) during this run. A
	// mismatch fails the whole run, so a committed report can only ever
	// carry true here.
	SerialParallelGainEqual bool `json:"serial_parallel_gain_equal,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	GoVersion  string  `json:"go_version"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Quick      bool    `json:"quick"`
	Entries    []Entry `json:"entries"`
}

// seedNsPerOp holds the pre-optimization (seed-implementation) ns/op
// measurements recorded before the allocation-free workspace, parallel
// round application, and incremental annealer landed; they populate
// before_ns_per_op so the committed report is a before/after record.
var seedNsPerOp = map[string]float64{
	"dygroups-star-run-10k":   16361907,
	"dygroups-clique-run-10k": 16511895,
	"apply-round-star-10k":    2398137,
	"apply-round-clique-10k":  2439049,
	"apply-round-star-100k":   38527979,
	"apply-round-clique-100k": 35088222,
	"aggregate-gain-star-10k": 1652597,
	"anneal-star-1k":          50292887,
	"anneal-star-10k":         532331110,
	"anneal-clique-1k":        49847161,
	"anneal-clique-10k":       572812265,
	"anneal-generic-1k":       56981756,
	// n=10⁶ entries, recorded immediately before the SoA layout and the
	// float-radix round sort landed (α=16 runs, GOMAXPROCS=1).
	"dygroups-star-run-1m":   3045042375,
	"dygroups-clique-run-1m": 3028257040,
	// The parallel annealer is new; its "before" is the unchanged serial
	// Annealing grouper on the same inputs and sweep budget (Sweeps=2 at
	// n=10⁶, measured on this machine; the 10k figures are the committed
	// BENCH_7 serial-annealer numbers at the shared Sweeps=20 budget).
	"anneal-par-star-1m":    1465375059,
	"anneal-par-clique-1m":  1548835319,
	"anneal-par-star-10k":   46445201,
	"anneal-par-clique-10k": 54182757,
}

// measurement is the output of one timing loop.
type measurement struct {
	nsPerOp     float64
	allocsPerOp float64
	bytesPerOp  float64
}

// measure runs f repeatedly until the total measured time reaches
// target, then reports per-op figures. One warm-up call precedes
// measurement so pool and workspace buffers are hot — steady state is
// what the harness tracks.
func measure(target time.Duration, f func()) measurement {
	f() // warm up caches, pools, and workspace buffers
	iters := 1
	for {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if elapsed >= target || iters >= 1<<24 {
			n := float64(iters)
			return measurement{
				nsPerOp:     float64(elapsed.Nanoseconds()) / n,
				allocsPerOp: float64(after.Mallocs-before.Mallocs) / n,
				bytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / n,
			}
		}
		// Estimate the iteration count that lands ~20% past target.
		perOp := float64(elapsed) / float64(iters)
		if perOp <= 0 {
			perOp = 1
		}
		next := int(1.2 * float64(target) / perOp)
		if next <= iters {
			next = iters * 2
		}
		iters = next
	}
}

func skillsFor(n int) core.Skills {
	return dist.Generate(n, dist.PaperLogNormal, 1)
}

// runCase measures one full rounds-round simulation under a grouping
// policy — the same shape as the root BenchmarkDyGroups* benchmarks.
func runCase(n, rounds int, mode core.Mode, mk func(seed int64) core.Grouper, target time.Duration) (measurement, error) {
	skills := skillsFor(n)
	cfg := core.Config{K: 5, Rounds: rounds, Mode: mode, Gain: core.MustLinear(0.5)}
	var runErr error
	seed := int64(0)
	m := measure(target, func() {
		seed++
		if _, err := core.Run(cfg, skills, mk(seed)); err != nil && runErr == nil {
			runErr = err
		}
	})
	return m, runErr
}

// applyRoundCase measures one in-place workspace round at n
// participants, k = 5 groups.
func applyRoundCase(n int, mode core.Mode, target time.Duration) (measurement, error) {
	base := skillsFor(n)
	g := chunkGrouping(n, 5)
	// Box the gain into the interface once, outside the measured loop —
	// a per-call MustLinear conversion would cost 1 alloc/op.
	var gain core.Gain = core.MustLinear(0.5)
	w := core.NewWorkspace()
	work := base.Clone()
	var runErr error
	m := measure(target, func() {
		copy(work, base) // keep skill magnitudes stable across ops
		if _, err := w.ApplyRoundInPlace(work, g, mode, gain); err != nil && runErr == nil {
			runErr = err
		}
	})
	return m, runErr
}

// annealCase measures one full anneal (Annealing.Group) with group
// size 20 — the metaheuristic-comparison regime.
func annealCase(n int, mode core.Mode, gain core.Gain, target time.Duration) measurement {
	skills := skillsFor(n)
	k := n / 20
	seed := int64(0)
	return measure(target, func() {
		seed++
		baselines.NewAnnealing(seed, mode, gain).Group(skills, k)
	})
}

// annealParCase measures one deterministic parallel anneal
// (ParallelAnnealing.Group) at the default worker fan-out and, before
// timing, checks that the Workers=1 and Workers=4 executions of the
// same (seed, skills, k) produce bit-identical objectives — the
// determinism contract the grouper advertises, asserted on every
// report.
func annealParCase(n, sweeps int, mode core.Mode, target time.Duration) (measurement, bool) {
	skills := skillsFor(n)
	k := n / 20
	var gain core.Gain = core.MustLinear(0.5)
	runOnce := func(workers int) float64 {
		a := baselines.NewParallelAnnealing(1, mode, gain)
		a.Sweeps = sweeps
		a.Workers = workers
		return core.AggregateGain(skills, a.Group(skills, k), mode, gain)
	}
	equal := math.Float64bits(runOnce(1)) == math.Float64bits(runOnce(4))
	seed := int64(0)
	m := measure(target, func() {
		seed++
		a := baselines.NewParallelAnnealing(seed, mode, gain)
		a.Sweeps = sweeps
		a.Group(skills, k)
	})
	return m, equal
}

// applyRoundParity runs one workspace round twice on identical inputs —
// once on the serial path, once with the sharded path forced on at four
// workers — and reports whether the round gain and every updated skill
// agree bit for bit.
func applyRoundParity(n int, mode core.Mode) (bool, error) {
	base := skillsFor(n)
	g := chunkGrouping(n, 5)
	var gain core.Gain = core.MustLinear(0.5)
	runOnce := func(threshold, workers int) (float64, core.Skills, error) {
		defer func(t, w int) {
			core.ParallelRoundThreshold = t
			core.ParallelRoundWorkers = w
		}(core.ParallelRoundThreshold, core.ParallelRoundWorkers)
		core.ParallelRoundThreshold = threshold
		core.ParallelRoundWorkers = workers
		work := base.Clone()
		gv, err := core.NewWorkspace().ApplyRoundInPlace(work, g, mode, gain)
		return gv, work, err
	}
	serialGain, serialSkills, err := runOnce(n+1, 0)
	if err != nil {
		return false, err
	}
	parGain, parSkills, err := runOnce(1, 4)
	if err != nil {
		return false, err
	}
	if math.Float64bits(serialGain) != math.Float64bits(parGain) {
		return false, nil
	}
	for i := range serialSkills {
		if math.Float64bits(serialSkills[i]) != math.Float64bits(parSkills[i]) {
			return false, nil
		}
	}
	return true, nil
}

// sessionCreateCase measures one batch of session creates fanned
// across workers goroutines against a fresh store with the given shard
// count — the admission path under contention: the CAS limit reserve,
// the id allocation, and the per-shard insert.
func sessionCreateCase(shards, batch, workers int, target time.Duration) (measurement, error) {
	errs := make([]error, workers)
	m := measure(target, func() {
		st := server.NewShardedSessionStore(shards)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < batch/workers; i++ {
					if _, err := st.Create(server.CreateSessionRequest{GroupSize: 2}); err != nil && errs[w] == nil {
						errs[w] = err
					}
				}
			}(w)
		}
		wg.Wait()
	})
	for _, err := range errs {
		if err != nil {
			return m, err
		}
	}
	return m, nil
}

// sessionTrafficCase measures a mixed workload — join+leave pairs,
// learning rounds, status snapshots — fanned across workers goroutines
// over many sessions. Every op routes through the store's session
// lookup, so the figure covers shard selection plus the per-session
// work; the join+leave pairing keeps rosters stable so the measurement
// is stationary.
func sessionTrafficCase(shards, sessions, ops, workers int, target time.Duration) (measurement, error) {
	st := server.NewShardedSessionStore(shards)
	ids := make([]int64, sessions)
	for i := range ids {
		id, err := st.Create(server.CreateSessionRequest{GroupSize: 2})
		if err != nil {
			return measurement{}, err
		}
		sess, _ := st.Session(id)
		for j := 0; j < 4; j++ {
			if _, err := sess.Join(0.3 + 0.1*float64(j)); err != nil {
				return measurement{}, err
			}
		}
		ids[i] = id
	}
	errs := make([]error, workers)
	m := measure(target, func() {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				fail := func(err error) {
					if err != nil && errs[w] == nil {
						errs[w] = err
					}
				}
				for i := 0; i < ops/workers; i++ {
					sess, ok := st.Session(ids[(w*31+i)%len(ids)])
					if !ok {
						fail(fmt.Errorf("session lookup lost id"))
						return
					}
					switch i % 4 {
					case 0:
						pid, err := sess.Join(0.75)
						if err != nil {
							fail(err)
							return
						}
						fail(sess.Leave(pid))
					case 1:
						_, err := sess.RunRound()
						fail(err)
					default:
						_ = sess.Status()
					}
				}
			}(w)
		}
		wg.Wait()
	})
	for _, err := range errs {
		if err != nil {
			return m, err
		}
	}
	return m, nil
}

// sessionRecoveryCase journals sessions (create, joins, one round
// each) into a throwaway directory, drops the store kill -9 style, and
// measures replay-on-boot over the whole journal.
func sessionRecoveryCase(sessions int, target time.Duration) (measurement, error) {
	dir, err := os.MkdirTemp("", "peerbench-journal-")
	if err != nil {
		return measurement{}, err
	}
	defer os.RemoveAll(dir)
	j, err := server.OpenJournal(dir)
	if err != nil {
		return measurement{}, err
	}
	st := server.NewShardedSessionStore(256)
	st.AttachJournal(j)
	for i := 0; i < sessions; i++ {
		id, err := st.Create(server.CreateSessionRequest{GroupSize: 2})
		if err != nil {
			return measurement{}, err
		}
		sess, _ := st.Session(id)
		for _, s := range []float64{0.4, 0.8, 1.2} {
			if _, err := sess.Join(s); err != nil {
				return measurement{}, err
			}
		}
		if _, err := sess.RunRound(); err != nil {
			return measurement{}, err
		}
	}
	st.Crash()
	var runErr error
	m := measure(target, func() {
		rec := server.NewShardedSessionStore(256)
		rec.AttachJournal(j)
		n, err := rec.Recover()
		if err == nil && n != sessions {
			err = fmt.Errorf("recovered %d sessions, want %d", n, sessions)
		}
		if err != nil && runErr == nil {
			runErr = err
		}
		rec.Crash() // release the recovered WAL handles before the next op
	})
	return m, runErr
}

func chunkGrouping(n, k int) core.Grouping {
	size := n / k
	g := make(core.Grouping, k)
	for i := 0; i < k; i++ {
		grp := make([]int, size)
		for j := range grp {
			grp[j] = i*size + j
		}
		g[i] = grp
	}
	return g
}

// buildReport runs the whole suite. quick drops the n≥100k entries so
// the CI smoke stays fast; names are identical across modes so the
// regression comparison matches entries by name. Progress lines go to
// stderr, keeping stdout clean for the JSON report. cooldown inserts
// an idle gap after each entry: on thermally- or contention-limited
// runners a continuous sweep measures its own duty cycle (late entries
// run on a progressively slower machine), and lowering the duty cycle
// keeps every entry on comparable footing.
func buildReport(quick bool, target, cooldown time.Duration, only *regexp.Regexp, stderr io.Writer) (*Report, error) {
	rep := &Report{GoVersion: runtime.Version(), GoMaxProcs: runtime.GOMAXPROCS(0), Quick: quick}
	// should gates each entry on the -only filter, letting a rerun
	// re-measure a handful of entries without paying for the sweep.
	should := func(name string) bool { return only == nil || only.MatchString(name) }
	add := func(name string, n int, m measurement) *Entry {
		defer time.Sleep(cooldown)
		rep.Entries = append(rep.Entries, Entry{
			Name:          name,
			N:             n,
			NsPerOp:       m.nsPerOp,
			AllocsPerOp:   m.allocsPerOp,
			BytesPerOp:    m.bytesPerOp,
			BeforeNsPerOp: seedNsPerOp[name],
		})
		e := &rep.Entries[len(rep.Entries)-1]
		fmt.Fprintf(stderr, "%-28s n=%-7d %14.0f ns/op %10.1f allocs/op\n", name, n, m.nsPerOp, m.allocsPerOp)
		return e
	}

	sizes := []int{1000, 10000, 100000}
	if quick {
		sizes = []int{1000, 10000}
	}

	// DyGroups Star/Clique full simulations.
	dygroupsCases := []struct {
		mode core.Mode
		slug string
		mk   func(seed int64) core.Grouper
	}{
		{core.Star, "dygroups-star-run", func(int64) core.Grouper { return peerlearn.NewDyGroupsStar() }},
		{core.Clique, "dygroups-clique-run", func(int64) core.Grouper { return peerlearn.NewDyGroupsClique() }},
	}
	for _, n := range sizes {
		for _, mc := range dygroupsCases {
			name := mc.slug + "-" + sizeSlug(n)
			if !should(name) {
				continue
			}
			m, err := runCase(n, 5, mc.mode, mc.mk, target)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			add(name, n, m)
		}
	}

	// The raw-speed target: full α=16 simulations at n=10⁶ (full sweep
	// only) — the regime the SoA layout and the radix round sort exist
	// for.
	if !quick {
		for _, mc := range dygroupsCases {
			name := mc.slug + "-1m"
			if !should(name) {
				continue
			}
			m, err := runCase(1_000_000, 16, mc.mode, mc.mk, target)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			add(name, 1_000_000, m)
		}
	}

	// Baselines at the paper's default n = 10k.
	for _, bc := range []struct {
		slug string
		mk   func(seed int64) core.Grouper
	}{
		{"random-run", func(seed int64) core.Grouper { return baselines.NewRandom(seed) }},
		{"kmeans-run", func(seed int64) core.Grouper { return baselines.NewKMeans(seed) }},
		{"lpa-run", func(int64) core.Grouper { return baselines.NewLPA() }},
		{"percentile-run", func(int64) core.Grouper { p, _ := baselines.NewPercentile(0.75); return p }},
	} {
		name := bc.slug + "-10k"
		if !should(name) {
			continue
		}
		m, err := runCase(10000, 5, core.Star, bc.mk, target)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		add(name, 10000, m)
	}

	// Workspace round application, serial vs parallel. The serial
	// measurement pins the threshold above n; the parallel one restores
	// the default so the sharded path engages at 100k. Every entry also
	// asserts the forced-parallel round reproduces the serial round bit
	// for bit before it is measured.
	for _, n := range sizes {
		for _, mode := range []core.Mode{core.Star, core.Clique} {
			slug := "apply-round-" + modeSlug(mode) + "-" + sizeSlug(n)
			if !should(slug) {
				continue
			}
			equal, err := applyRoundParity(n, mode)
			if err != nil {
				return nil, fmt.Errorf("%s parity: %w", slug, err)
			}
			if !equal {
				return nil, fmt.Errorf("%s: parallel round diverges from the serial round", slug)
			}
			defaultThreshold := core.ParallelRoundThreshold
			core.ParallelRoundThreshold = n + 1
			serial, err := applyRoundCase(n, mode, target)
			core.ParallelRoundThreshold = defaultThreshold
			if err != nil {
				return nil, fmt.Errorf("%s serial: %w", slug, err)
			}
			if n < defaultThreshold {
				e := add(slug, n, serial)
				e.SerialParallelGainEqual = true
				continue
			}
			par, err := applyRoundCase(n, mode, target)
			if err != nil {
				return nil, fmt.Errorf("%s parallel: %w", slug, err)
			}
			e := add(slug, n, par)
			e.SerialParallelGainEqual = true
			e.SpeedupVsSerial = serial.nsPerOp / par.nsPerOp
			fmt.Fprintf(stderr, "%-28s %42.2fx vs serial\n", slug, e.SpeedupVsSerial)
		}
	}

	// Aggregate gain preview (the /v1/group server path).
	if should("aggregate-gain-star-10k") {
		s := skillsFor(10000)
		g := chunkGrouping(10000, 5)
		var gain core.Gain = core.MustLinear(0.5)
		m := measure(target, func() { core.AggregateGain(s, g, core.Star, gain) })
		add("aggregate-gain-star-10k", 10000, m)
	}

	// Sharded session store: parallel create throughput (with the
	// single-shard figure as the "serial" reference), mixed session
	// traffic, and replay-on-boot recovery.
	{
		workers := runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
		if should("session-create-10k") {
			sharded, err := sessionCreateCase(256, 10000, workers, target)
			if err != nil {
				return nil, fmt.Errorf("session-create-10k sharded: %w", err)
			}
			single, err := sessionCreateCase(1, 10000, workers, target)
			if err != nil {
				return nil, fmt.Errorf("session-create-10k single-shard: %w", err)
			}
			e := add("session-create-10k", 10000, sharded)
			e.SpeedupVsSerial = single.nsPerOp / sharded.nsPerOp
			fmt.Fprintf(stderr, "%-28s %42.2fx vs single shard\n", "session-create-10k", e.SpeedupVsSerial)
		}

		if should("session-traffic-10k") {
			traffic, err := sessionTrafficCase(256, 64, 10000, workers, target)
			if err != nil {
				return nil, fmt.Errorf("session-traffic-10k: %w", err)
			}
			add("session-traffic-10k", 10000, traffic)
		}

		if should("session-recovery-1k") {
			recovery, err := sessionRecoveryCase(1000, target)
			if err != nil {
				return nil, fmt.Errorf("session-recovery-1k: %w", err)
			}
			add("session-recovery-1k", 1000, recovery)
		}
	}

	// Incremental annealer.
	for _, n := range sizes {
		for _, mode := range []core.Mode{core.Star, core.Clique} {
			name := "anneal-" + modeSlug(mode) + "-" + sizeSlug(n)
			if !should(name) {
				continue
			}
			m := annealCase(n, mode, core.MustLinear(0.5), target)
			add(name, n, m)
		}
	}
	if should("anneal-generic-1k") {
		gain, err := core.NewSqrt(0.5, 3)
		if err != nil {
			return nil, err
		}
		m := annealCase(1000, core.Star, gain, target)
		add("anneal-generic-1k", 1000, m)
	}

	// Deterministic parallel annealer. Each entry first proves the
	// Workers=1 and Workers=4 executions bit-identical, then times the
	// default fan-out. The n=10⁶ entry (full sweep only) drops to
	// Sweeps=2 to bound the run; its before_ns_per_op was measured on
	// the serial Annealing grouper at the same sweep budget.
	for _, pc := range []struct {
		n, sweeps int
		fullOnly  bool
	}{
		{10000, 20, false},
		{1_000_000, 2, true},
	} {
		if pc.fullOnly && quick {
			continue
		}
		for _, mode := range []core.Mode{core.Star, core.Clique} {
			name := "anneal-par-" + modeSlug(mode) + "-" + sizeSlug(pc.n)
			if !should(name) {
				continue
			}
			m, equal := annealParCase(pc.n, pc.sweeps, mode, target)
			if !equal {
				return nil, fmt.Errorf("%s: parallel anneal diverges from its serial (Workers=1) execution", name)
			}
			e := add(name, pc.n, m)
			e.SerialParallelGainEqual = true
		}
	}
	return rep, nil
}

func sizeSlug(n int) string {
	if n >= 1_000_000 && n%1_000_000 == 0 {
		return fmt.Sprintf("%dm", n/1_000_000)
	}
	if n%1000 == 0 {
		return fmt.Sprintf("%dk", n/1000)
	}
	return fmt.Sprint(n)
}

func modeSlug(m core.Mode) string {
	if m == core.Clique {
		return "clique"
	}
	return "star"
}

// compare fails (non-nil error) if any entry shared between rep and
// the baseline file regresses ns/op by more than maxRegress
// (fractional, e.g. 0.25 = 25%). Entries present only in the baseline
// are skipped, so quick runs compare naturally against a full
// baseline; entries present only in the current run are reported as
// warnings — they have no regression gate until the baseline is
// refreshed — but do not fail the comparison.
func compare(rep *Report, baselinePath string, maxRegress float64, stderr io.Writer) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
	}
	baseNs := make(map[string]float64, len(base.Entries))
	for _, e := range base.Entries {
		baseNs[e.Name] = e.NsPerOp
	}
	var failures []string
	for _, e := range rep.Entries {
		b, ok := baseNs[e.Name]
		if !ok {
			fmt.Fprintf(stderr, "compare %-28s WARNING: missing from baseline %s — no regression gate\n", e.Name, baselinePath)
			continue
		}
		if b <= 0 {
			continue
		}
		ratio := e.NsPerOp / b
		status := "ok"
		if ratio > 1+maxRegress {
			status = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%.2fx)", e.Name, e.NsPerOp, b, ratio))
		}
		fmt.Fprintf(stderr, "compare %-28s %6.2fx of baseline  %s\n", e.Name, ratio, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d entr%s regressed more than %.0f%%:\n  %s",
			len(failures), plural(len(failures)), maxRegress*100, joinLines(failures))
	}
	return nil
}

// mergeBest folds src into dst, keeping for every entry the sweep
// with the lower ns/op. On machines with bursty background load a
// single continuous sweep samples each entry's cost plus whatever the
// host happened to be doing at that moment; the per-entry minimum
// across repetitions is the standard estimator for the uncontended
// cost. Entries are matched by name; the faster sweep's allocs, bytes,
// and speedup ride along so every entry stays one coherent
// measurement. Entries in src with no dst counterpart are appended, so
// a -only sweep merged into a -prior report grows it rather than
// dropping the unmatched names.
func mergeBest(dst, src *Report) {
	byName := make(map[string]int, len(dst.Entries))
	for i, e := range dst.Entries {
		byName[e.Name] = i
	}
	for _, e := range src.Entries {
		j, ok := byName[e.Name]
		if !ok {
			dst.Entries = append(dst.Entries, e)
			continue
		}
		if e.NsPerOp < dst.Entries[j].NsPerOp {
			dst.Entries[j] = e
		}
	}
}

// loadReport reads a previously written report file.
func loadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("parse report %s: %w", path, err)
	}
	return &rep, nil
}

func plural(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses args, executes the sweep, and returns the process exit
// code: 0 on success, 1 on a measurement failure or regression, 2 on
// bad flags.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("peerbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "CI-sized sweep: drop the n=100k entries and shorten the per-entry budget")
	out := fs.String("out", "", "write the JSON report to this file (default: stdout)")
	comparePath := fs.String("compare", "", "baseline BENCH_*.json to compare against; exit 1 on regression")
	maxRegress := fs.Float64("max-regress", 0.25, "maximum tolerated fractional ns/op regression in -compare mode")
	benchtime := fs.Duration("benchtime", 0, "per-entry measurement budget (default 1s, 250ms with -quick)")
	cooldown := fs.Duration("cooldown", 0, "idle gap after each entry; use on thermally- or contention-limited machines so late entries are not measured on a throttled CPU")
	bestOf := fs.Int("best-of", 1, "repeat the whole sweep this many times and keep each entry's fastest measurement (per-entry minimum; pair with -cooldown on machines with bursty background load)")
	onlyExpr := fs.String("only", "", "measure only entries whose name matches this regexp (re-measure a few entries without paying for the full sweep; pair with -prior to fold them into an existing report)")
	priorPath := fs.String("prior", "", "seed the report from this prior report file; fresh measurements replace prior entries only when faster (best-of across invocations — only meaningful when both runs measured identical code)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var only *regexp.Regexp
	if *onlyExpr != "" {
		var err error
		if only, err = regexp.Compile(*onlyExpr); err != nil {
			fmt.Fprintln(stderr, "peerbench: bad -only pattern:", err)
			return 2
		}
	}

	target := *benchtime
	if target <= 0 {
		target = time.Second
		if *quick {
			target = 250 * time.Millisecond
		}
	}

	rep, err := buildReport(*quick, target, *cooldown, only, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "peerbench:", err)
		return 1
	}
	for r := 1; r < *bestOf; r++ {
		fmt.Fprintf(stderr, "best-of sweep %d/%d\n", r+1, *bestOf)
		next, err := buildReport(*quick, target, *cooldown, only, stderr)
		if err != nil {
			fmt.Fprintln(stderr, "peerbench:", err)
			return 1
		}
		mergeBest(rep, next)
	}
	if *priorPath != "" {
		prior, err := loadReport(*priorPath)
		if err != nil {
			fmt.Fprintln(stderr, "peerbench:", err)
			return 1
		}
		// The prior report keeps its full entry set; this run's (possibly
		// -only-filtered) measurements displace prior ones only when
		// faster. Header fields follow the freshest sweep.
		prior.GoVersion, prior.GoMaxProcs = rep.GoVersion, rep.GoMaxProcs
		prior.Quick = prior.Quick && rep.Quick
		mergeBest(prior, rep)
		rep = prior
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "peerbench:", err)
		return 1
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(stderr, "peerbench:", err)
			return 1
		}
	} else {
		stdout.Write(enc)
	}

	if *comparePath != "" {
		if err := compare(rep, *comparePath, *maxRegress, stderr); err != nil {
			fmt.Fprintln(stderr, "peerbench:", err)
			return 1
		}
	}
	return 0
}
