// Command benchfig regenerates the tables behind every figure of the
// paper's evaluation section.
//
// Usage:
//
//	benchfig -fig all                 # every figure, printed to stdout
//	benchfig -fig 5a                  # one figure
//	benchfig -fig all -out results/   # also write one TSV per figure
//	benchfig -fig 10a -quick          # shrunken sweep for smoke tests
//
// Figure ids follow the paper: 1, 2, 3, 4a, 4b, 5a ... 13b, plus "bf"
// for the Section V-B3 brute-force validation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"peerlearn/internal/experiments"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure id or \"all\"")
		out      = flag.String("out", "", "directory for TSV output (optional)")
		quick    = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		seed     = flag.Int64("seed", 1, "random seed")
		runs     = flag.Int("runs", 0, "repetitions to average (default 10, paper's setting)")
		trials   = flag.Int("trials", 0, "simulated human-experiment trials (default 20)")
		verify   = flag.Bool("verify", false, "instead of printing tables, check every machine-checkable paper claim")
		plotIt   = flag.Bool("plot", false, "also draw each figure as an ASCII chart")
		jsonIt   = flag.Bool("json", false, "with -out, also write each figure as JSON")
		cacheDir = flag.String("cache", "", "directory for a read-through figure cache (skips recomputation)")
	)
	flag.Parse()
	plotFigures = *plotIt
	jsonFigures = *jsonIt
	if *cacheDir != "" {
		c, err := experiments.NewCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(1)
		}
		figureCache = c
	}

	opts := experiments.Options{Seed: *seed, Runs: *runs, Quick: *quick, HumanTrials: *trials}
	if *verify {
		if err := runVerify(opts); err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(1)
		}
		return
	}
	ids := []string{*fig}
	if *fig == "all" {
		ids = experiments.IDs()
	}
	if err := generate(ids, opts, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}

// runVerify regenerates the claimed figures and reports a PASS/FAIL line
// per paper claim; it returns an error if any claim failed.
func runVerify(opts experiments.Options) error {
	results, err := experiments.Verify(opts)
	if err != nil {
		return err
	}
	failed := 0
	for _, r := range results {
		status := "PASS"
		if r.Err != nil {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%s  fig %-15s %s\n", status, r.Claim.Figure, r.Claim.Statement)
		if r.Err != nil {
			fmt.Printf("      ↳ %v\n", r.Err)
		}
	}
	fmt.Printf("%d/%d claims hold\n", len(results)-failed, len(results))
	if failed > 0 {
		return fmt.Errorf("%d claim(s) failed", failed)
	}
	return nil
}

// plotFigures enables ASCII-chart rendering after each table;
// jsonFigures adds a JSON file next to each TSV.
var (
	plotFigures bool
	jsonFigures bool
	figureCache *experiments.Cache
)

func generate(ids []string, opts experiments.Options, outDir string) error {
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	for _, id := range ids {
		table, err := experiments.GenerateCached(id, opts, figureCache)
		if err != nil {
			return fmt.Errorf("figure %s: %w", id, err)
		}
		if err := table.Render(os.Stdout); err != nil {
			return err
		}
		if plotFigures {
			if err := table.RenderChart(os.Stdout); err != nil {
				return err
			}
		}
		fmt.Println()
		if outDir != "" {
			path := filepath.Join(outDir, "fig"+id+".tsv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := table.WriteTSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("# wrote %s\n", path)
			if jsonFigures {
				jsonPath := filepath.Join(outDir, "fig"+id+".json")
				data, err := json.MarshalIndent(table, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("# wrote %s\n", jsonPath)
			}
			fmt.Println()
		}
	}
	return nil
}
