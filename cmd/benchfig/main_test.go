package main

import (
	"os"
	"path/filepath"
	"testing"

	"peerlearn/internal/experiments"
)

func quickOpts() experiments.Options {
	return experiments.Options{Seed: 3, Runs: 1, Quick: true, HumanTrials: 2}
}

func TestGenerateOneFigure(t *testing.T) {
	if err := generate([]string{"bf"}, quickOpts(), ""); err != nil {
		t.Fatalf("generate(bf): %v", err)
	}
}

func TestGenerateWritesTSV(t *testing.T) {
	dir := t.TempDir()
	if err := generate([]string{"1", "ext-tiebreak"}, quickOpts(), dir); err != nil {
		t.Fatalf("generate: %v", err)
	}
	for _, name := range []string{"fig1.tsv", "figext-tiebreak.tsv"} {
		path := filepath.Join(dir, name)
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}

func TestGenerateUnknownFigure(t *testing.T) {
	if err := generate([]string{"42z"}, quickOpts(), ""); err == nil {
		t.Fatal("unknown figure id accepted")
	}
}

func TestGenerateCreatesOutputDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "out")
	if err := generate([]string{"bf"}, quickOpts(), dir); err != nil {
		t.Fatalf("generate into nested dir: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "figbf.tsv")); err != nil {
		t.Fatalf("TSV not written: %v", err)
	}
}
