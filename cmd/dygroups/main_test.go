package main

import (
	"os"
	"path/filepath"
	"testing"

	"peerlearn/internal/core"
	"peerlearn/internal/export"
)

func TestRunValidInstance(t *testing.T) {
	if err := run(90, 3, 2, 0.5, "star", "dygroups", "lognormal", 1, true, "", ""); err != nil {
		t.Fatalf("run failed on a valid instance: %v", err)
	}
}

func TestRunAllAlgorithmsAndDistributions(t *testing.T) {
	for _, algo := range []string{"dygroups", "random", "kmeans", "lpa", "percentile", "ascending", "annealing"} {
		for _, distName := range []string{"lognormal", "zipf", "zipf10", "uniform"} {
			if err := run(30, 3, 1, 0.5, "clique", algo, distName, 2, false, "", ""); err != nil {
				t.Errorf("run(%s, %s) failed: %v", algo, distName, err)
			}
		}
	}
}

func TestRunErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		call func() error
	}{
		{"bad mode", func() error { return run(30, 3, 1, 0.5, "ring", "dygroups", "uniform", 1, false, "", "") }},
		{"bad rate", func() error { return run(30, 3, 1, 0, "star", "dygroups", "uniform", 1, false, "", "") }},
		{"bad dist", func() error { return run(30, 3, 1, 0.5, "star", "dygroups", "cauchy", 1, false, "", "") }},
		{"bad algo", func() error { return run(30, 3, 1, 0.5, "star", "simulated-annealing", "uniform", 1, false, "", "") }},
		{"indivisible", func() error { return run(31, 3, 1, 0.5, "star", "dygroups", "uniform", 1, false, "", "") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.call(); err == nil {
				t.Fatal("expected an error")
			}
		})
	}
}

func TestRunWritesJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := run(30, 3, 2, 0.5, "star", "dygroups", "uniform", 1, false, path, ""); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sim, err := export.ReadSimulation(f)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Algorithm != "DyGroups-Star" || len(sim.RoundGains) != 2 {
		t.Fatalf("unexpected JSON content: %+v", sim)
	}
}

func TestPickAlgoModeDispatch(t *testing.T) {
	g, err := pickAlgo("dygroups", core.Star, 1, core.MustLinear(0.5))
	if err != nil || g.Name() != "DyGroups-Star" {
		t.Errorf("star dispatch: %v, %v", g, err)
	}
	g, err = pickAlgo("dygroups", core.Clique, 1, core.MustLinear(0.5))
	if err != nil || g.Name() != "DyGroups-Clique" {
		t.Errorf("clique dispatch: %v, %v", g, err)
	}
}

func TestPickDistNames(t *testing.T) {
	for _, name := range []string{"lognormal", "zipf", "zipf10", "uniform"} {
		d, err := pickDist(name)
		if err != nil || d == nil {
			t.Errorf("pickDist(%s): %v", name, err)
		}
	}
	if _, err := pickDist("normal"); err == nil {
		t.Error("pickDist accepted the normal distribution (can produce negative skills)")
	}
}

func TestRunWritesAndReplaysLedger(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ledger")
	if err := run(30, 3, 2, 0.5, "star", "dygroups", "uniform", 1, false, "", path); err != nil {
		t.Fatal(err)
	}
	if err := replay(path); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := replay(filepath.Join(t.TempDir(), "missing.ledger")); err == nil {
		t.Fatal("missing ledger accepted")
	}
}
