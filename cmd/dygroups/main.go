// Command dygroups runs one Targeted Dynamic Grouping simulation and
// prints the per-round and total learning gain.
//
// Usage:
//
//	dygroups [-n 10000] [-k 5] [-alpha 5] [-r 0.5] [-mode star|clique]
//	         [-algo dygroups|random|kmeans|lpa|percentile|ascending]
//	         [-dist lognormal|zipf|zipf10|uniform] [-seed 1] [-v]
//
// The defaults reproduce the paper's default synthetic setting
// (Section V-B2).
package main

import (
	"flag"
	"fmt"
	"os"

	"peerlearn/internal/baselines"
	"peerlearn/internal/core"
	"peerlearn/internal/dist"
	"peerlearn/internal/dygroups"
	"peerlearn/internal/export"
	"peerlearn/internal/ledger"
)

func main() {
	var (
		n          = flag.Int("n", 10000, "number of participants")
		k          = flag.Int("k", 5, "number of groups (must divide n)")
		alpha      = flag.Int("alpha", 5, "number of rounds")
		r          = flag.Float64("r", 0.5, "learning rate in (0,1]")
		modeName   = flag.String("mode", "star", "interaction mode: star or clique")
		algoName   = flag.String("algo", "dygroups", "grouping policy: dygroups, random, kmeans, lpa, percentile, ascending, annealing")
		distName   = flag.String("dist", "lognormal", "initial skill distribution: lognormal, zipf, zipf10, uniform")
		seed       = flag.Int64("seed", 1, "random seed")
		verbose    = flag.Bool("v", false, "print per-round details")
		jsonPath   = flag.String("json", "", "also write the result as JSON to this file (\"-\" for stdout)")
		ledgerPath = flag.String("ledger", "", "also write an auditable event log (JSON lines) to this file")
		replayPath = flag.String("replay", "", "instead of simulating, replay and verify a ledger file")
	)
	flag.Parse()

	if *replayPath != "" {
		if err := replay(*replayPath); err != nil {
			fmt.Fprintln(os.Stderr, "dygroups:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*n, *k, *alpha, *r, *modeName, *algoName, *distName, *seed, *verbose, *jsonPath, *ledgerPath); err != nil {
		fmt.Fprintln(os.Stderr, "dygroups:", err)
		os.Exit(1)
	}
}

// replay re-executes a recorded ledger, verifying its integrity, and
// prints the reconstructed outcome.
func replay(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	res, err := ledger.Replay(f)
	if err != nil {
		return err
	}
	fmt.Printf("ledger verified: %s, %d participants, %d rounds, mode=%s\n",
		res.Algorithm, len(res.Initial), len(res.Rounds), res.Config.Mode)
	fmt.Printf("total gain     : %.4f\n", res.TotalGain)
	return nil
}

func run(n, k, alpha int, r float64, modeName, algoName, distName string, seed int64, verbose bool, jsonPath, ledgerPath string) error {
	mode, err := core.ParseMode(modeName)
	if err != nil {
		return err
	}
	gain, err := core.NewLinear(r)
	if err != nil {
		return err
	}
	d, err := pickDist(distName)
	if err != nil {
		return err
	}
	grouper, err := pickAlgo(algoName, mode, seed, gain)
	if err != nil {
		return err
	}

	skills := dist.Generate(n, d, seed)
	cfg := core.Config{K: k, Rounds: alpha, Mode: mode, Gain: gain, RecordGroupings: ledgerPath != ""}
	res, err := core.Run(cfg, skills, grouper)
	if err != nil {
		return err
	}
	if ledgerPath != "" {
		f, err := os.Create(ledgerPath)
		if err != nil {
			return err
		}
		if err := ledger.Record(f, res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	fmt.Printf("algorithm      : %s\n", res.Algorithm)
	fmt.Printf("instance       : n=%d k=%d alpha=%d r=%g mode=%s dist=%s seed=%d\n",
		n, k, alpha, r, mode, d.Name(), seed)
	fmt.Printf("initial skills : sum=%.4f mean=%.4f min=%.4f max=%.4f\n",
		res.Initial.Sum(), res.Initial.Mean(), res.Initial.Min(), res.Initial.Max())
	if verbose {
		for _, rd := range res.Rounds {
			fmt.Printf("  round %-3d gain=%-12.4f variance=%.6f\n", rd.Index, rd.Gain, rd.Variance)
		}
	}
	fmt.Printf("final skills   : sum=%.4f mean=%.4f min=%.4f max=%.4f\n",
		res.Final.Sum(), res.Final.Mean(), res.Final.Min(), res.Final.Max())
	fmt.Printf("total gain     : %.4f\n", res.TotalGain)
	if jsonPath != "" {
		if jsonPath == "-" {
			return export.WriteResult(os.Stdout, res)
		}
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := export.WriteResult(f, res); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

func pickDist(name string) (dist.Distribution, error) {
	switch name {
	case "lognormal":
		return dist.PaperLogNormal, nil
	case "zipf":
		return dist.PaperZipf23, nil
	case "zipf10":
		return dist.PaperZipf10, nil
	case "uniform":
		return dist.Unit, nil
	default:
		return nil, fmt.Errorf("unknown distribution %q", name)
	}
}

func pickAlgo(name string, mode core.Mode, seed int64, gain core.Gain) (core.Grouper, error) {
	switch name {
	case "dygroups":
		if mode == core.Clique {
			return dygroups.NewClique(), nil
		}
		return dygroups.NewStar(), nil
	case "ascending":
		return dygroups.NewAscendingStar(), nil
	case "random":
		return baselines.NewRandom(seed), nil
	case "kmeans":
		return baselines.NewKMeans(seed), nil
	case "lpa":
		return baselines.NewLPA(), nil
	case "percentile":
		return baselines.NewPercentile(0.75)
	case "annealing":
		return baselines.NewAnnealing(seed, mode, gain), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}
