package peerlearn_test

import (
	"fmt"

	"peerlearn"
)

// Example runs the paper's toy example: 9 students, 3 groups, 3 rounds
// of Star-mode learning at rate 0.5 — DyGroups totals 2.55.
func Example() {
	skills := peerlearn.Skills{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	cfg := peerlearn.Config{K: 3, Rounds: 3, Mode: peerlearn.Star, Gain: peerlearn.MustLinear(0.5)}
	res, err := peerlearn.Run(cfg, skills, peerlearn.NewDyGroupsStar())
	if err != nil {
		panic(err)
	}
	fmt.Printf("total gain: %.2f\n", res.TotalGain)
	// Output: total gain: 2.55
}

// ExampleAggregateGain evaluates a single grouping without updating
// skills: the paper's Section II star example where [0.9 0.5 0.3] gains
// 0.5.
func ExampleAggregateGain() {
	skills := peerlearn.Skills{0.9, 0.5, 0.3}
	grouping := peerlearn.Grouping{{0, 1, 2}}
	gain := peerlearn.AggregateGain(skills, grouping, peerlearn.Star, peerlearn.MustLinear(0.5))
	fmt.Printf("%.2f\n", gain)
	// Output: 0.50
}

// ExampleApplyRound performs one learning round and shows the updated
// skills (clique mode; the paper's Section II example).
func ExampleApplyRound() {
	skills := peerlearn.Skills{0.9, 0.5, 0.3}
	grouping := peerlearn.Grouping{{0, 1, 2}}
	next, gain, err := peerlearn.ApplyRound(skills, grouping, peerlearn.Clique, peerlearn.MustLinear(0.5))
	if err != nil {
		panic(err)
	}
	fmt.Printf("gain %.2f, skills %.2f\n", gain, []float64(next))
	// Output: gain 0.40, skills [0.90 0.70 0.50]
}

// ExampleNewDyGroups picks the DyGroups variant matching the mode.
func ExampleNewDyGroups() {
	fmt.Println(peerlearn.NewDyGroups(peerlearn.Star).Name())
	fmt.Println(peerlearn.NewDyGroups(peerlearn.Clique).Name())
	// Output:
	// DyGroups-Star
	// DyGroups-Clique
}

// ExampleRunSized uses the unequal-group-size extension: a class of 9
// split 2/3/4 every round.
func ExampleRunSized() {
	skills := peerlearn.Skills{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	cfg := peerlearn.Config{Rounds: 2, Mode: peerlearn.Star, Gain: peerlearn.MustLinear(0.5)}
	g := peerlearn.NewDyGroupsStar().(peerlearn.SizedGrouper)
	res, err := peerlearn.RunSized(cfg, skills, []int{2, 3, 4}, g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("rounds: %d, gain > 0: %v\n", len(res.Rounds), res.TotalGain > 0)
	// Output: rounds: 2, gain > 0: true
}
