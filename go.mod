module peerlearn

go 1.22
