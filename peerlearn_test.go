package peerlearn_test

import (
	"math"
	"testing"

	"peerlearn"
)

func toy() peerlearn.Skills {
	return peerlearn.Skills{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
}

// TestFacadeToyExample exercises the whole public surface on the paper's
// toy example.
func TestFacadeToyExample(t *testing.T) {
	cfg := peerlearn.Config{K: 3, Rounds: 3, Mode: peerlearn.Star, Gain: peerlearn.MustLinear(0.5)}
	res, err := peerlearn.Run(cfg, toy(), peerlearn.NewDyGroupsStar())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TotalGain-2.55) > 1e-9 {
		t.Fatalf("DyGroups-Star toy total = %v, want 2.55", res.TotalGain)
	}

	cfg.Mode = peerlearn.Clique
	res, err = peerlearn.Run(cfg, toy(), peerlearn.NewDyGroupsClique())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TotalGain-2.334375) > 1e-9 {
		t.Fatalf("DyGroups-Clique toy total = %v, want 2.334375", res.TotalGain)
	}
}

func TestFacadeModeDispatch(t *testing.T) {
	if got := peerlearn.NewDyGroups(peerlearn.Star).Name(); got != "DyGroups-Star" {
		t.Errorf("NewDyGroups(Star) = %q", got)
	}
	if got := peerlearn.NewDyGroups(peerlearn.Clique).Name(); got != "DyGroups-Clique" {
		t.Errorf("NewDyGroups(Clique) = %q", got)
	}
}

func TestFacadeBaselines(t *testing.T) {
	cfg := peerlearn.Config{K: 3, Rounds: 2, Mode: peerlearn.Star, Gain: peerlearn.MustLinear(0.5)}
	p, err := peerlearn.NewPercentilePartitions(0.75)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []peerlearn.Grouper{
		peerlearn.NewRandomAssignment(1),
		peerlearn.NewKMeans(2),
		peerlearn.NewLPA(),
		p,
	} {
		res, err := peerlearn.Run(cfg, toy(), g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if res.TotalGain <= 0 {
			t.Errorf("%s produced no gain", g.Name())
		}
	}
	if _, err := peerlearn.NewPercentilePartitions(2); err == nil {
		t.Error("invalid percentile accepted")
	}
}

func TestFacadeApplyRoundAndAggregateGain(t *testing.T) {
	s := toy()
	g := peerlearn.NewDyGroupsStar().(interface {
		Group(peerlearn.Skills, int) peerlearn.Grouping
	}).Group(s, 3)
	gain := peerlearn.MustLinear(0.5)
	lg := peerlearn.AggregateGain(s, g, peerlearn.Star, gain)
	next, realized, err := peerlearn.ApplyRound(s, g, peerlearn.Star, gain)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lg-realized) > 1e-9 {
		t.Fatalf("AggregateGain %v != ApplyRound gain %v", lg, realized)
	}
	if math.Abs(realized-(next.Sum()-s.Sum())) > 1e-9 {
		t.Fatalf("gain accounting broken")
	}
}

func TestFacadeRunSized(t *testing.T) {
	cfg := peerlearn.Config{Rounds: 2, Mode: peerlearn.Star, Gain: peerlearn.MustLinear(0.5)}
	g, ok := peerlearn.NewDyGroupsStar().(peerlearn.SizedGrouper)
	if !ok {
		t.Fatal("DyGroups-Star does not implement SizedGrouper")
	}
	res, err := peerlearn.RunSized(cfg, toy(), []int{2, 3, 4}, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalGain <= 0 {
		t.Fatal("sized run produced no gain")
	}
}

func TestNewLinearValidation(t *testing.T) {
	if _, err := peerlearn.NewLinear(0); err == nil {
		t.Error("rate 0 accepted")
	}
	if _, err := peerlearn.NewLinear(0.5); err != nil {
		t.Errorf("rate 0.5 rejected: %v", err)
	}
}

func TestFacadeAnnealingDeterministic(t *testing.T) {
	cfg := peerlearn.Config{K: 3, Rounds: 3, Mode: peerlearn.Clique, Gain: peerlearn.MustLinear(0.5)}
	run := func(seed int64) float64 {
		res, err := peerlearn.Run(cfg, toy(), peerlearn.NewAnnealing(seed, cfg.Mode, cfg.Gain))
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalGain
	}
	//peerlint:allow floateq — determinism check: the same seed must reproduce the exact gain
	if a, b := run(11), run(11); a != b {
		t.Fatalf("same seed, different gain: %v vs %v", a, b)
	}
}
