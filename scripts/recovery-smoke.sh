#!/usr/bin/env bash
# recovery-smoke: end-to-end crash-recovery check against the real
# daemon binary. Boots peerlearnd with -data-dir, drives a session
# (create, joins, rounds) over HTTP, kills the process with SIGKILL —
# no drain, no close events — reboots it over the same directory, and
# asserts the session status comes back byte-identical and the session
# still serves traffic.
#
# Usage: scripts/recovery-smoke.sh [path-to-peerlearnd]
# With no argument the daemon is built into a temp dir first.
set -euo pipefail

ADDR=127.0.0.1:18980
BASE="http://$ADDR"
WORK=$(mktemp -d)
DATA="$WORK/data"
trap 'kill $SRV 2>/dev/null || true; rm -rf "$WORK"' EXIT

BIN=${1:-}
if [ -z "$BIN" ]; then
  BIN="$WORK/peerlearnd"
  go build -o "$BIN" ./cmd/peerlearnd
fi

wait_healthy() {
  for _ in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "recovery-smoke: daemon never became healthy" >&2
  return 1
}

"$BIN" -addr "$ADDR" -data-dir "$DATA" &
SRV=$!
wait_healthy

curl -sf -X POST "$BASE/v1/sessions" -d '{"group_size":2}' | grep -q '"id":1'
for skill in 0.2 0.5 0.8 0.9; do
  curl -sf -X POST "$BASE/v1/sessions/1/join" -d "{\"skill\":$skill}" >/dev/null
done
curl -sf -X POST "$BASE/v1/sessions/1/round" -d '{}' >/dev/null
curl -sf -X POST "$BASE/v1/sessions/1/round" -d '{}' >/dev/null
BEFORE=$(curl -sf "$BASE/v1/sessions/1")

# SIGKILL: no graceful shutdown, no WAL close events — exactly the
# crash the journal exists for.
kill -9 $SRV
wait $SRV 2>/dev/null || true

"$BIN" -addr "$ADDR" -data-dir "$DATA" &
SRV=$!
wait_healthy

AFTER=$(curl -sf "$BASE/v1/sessions/1")
if [ "$BEFORE" != "$AFTER" ]; then
  echo "recovery-smoke: status diverged across kill -9 + reboot" >&2
  echo "  before: $BEFORE" >&2
  echo "  after:  $AFTER" >&2
  exit 1
fi

# The recovered session keeps working and keeps journaling.
curl -sf -X POST "$BASE/v1/sessions/1/round" -d '{}' | grep -q '"round":3'

kill -TERM $SRV
wait $SRV 2>/dev/null || true
echo "recovery-smoke: ok (status byte-identical across kill -9 + reboot)"
