#!/usr/bin/env bash
# load-smoke: the serving-path latency gate (the load-smoke CI job).
#
# Phase 1 — determinism: the canonical smoke configuration is run twice
# at the same seed; the two reports must be byte-identical. The smoke
# runs sequentially on a seeded virtual clock, so every latency in the
# report is a pure function of the seed — any diff means nondeterminism
# leaked into the serving path or the harness.
#
# Phase 2 — gates: the same configuration is compared entry-for-entry
# against the committed BENCH_10.json baseline (zero regression budget:
# virtual latencies are exact, so any drift must be an intentional,
# regenerated baseline) and against absolute latency SLOs. The fresh
# report is left at load-report.json for artifact upload.
#
# Phase 3 — concurrency: a short real-clock, concurrent in-process run
# with a loose SLO proves the open-loop dispatcher and the serving tier
# under actual parallelism, not just the sequential replay.
#
# Usage: scripts/load-smoke.sh
set -euo pipefail

SMOKE_ARGS=(-deterministic -seed 1 -schedule constant:500 -ops 4000 -sessions 16)
SMOKE_SLO='round:p99<5ms,all:p99<10ms'
LIVE_SLO='all:p99<250ms'

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

go build -o "$WORK/peerload" ./cmd/peerload

"$WORK/peerload" "${SMOKE_ARGS[@]}" -out "$WORK/a.json" >/dev/null
"$WORK/peerload" "${SMOKE_ARGS[@]}" -out "$WORK/b.json" >/dev/null
if ! cmp -s "$WORK/a.json" "$WORK/b.json"; then
  echo "load-smoke: FAIL — deterministic runs at the same seed differ:" >&2
  diff "$WORK/a.json" "$WORK/b.json" | head -40 >&2 || true
  exit 1
fi
echo "load-smoke: deterministic report is byte-stable across runs"

"$WORK/peerload" "${SMOKE_ARGS[@]}" -out load-report.json \
  -compare BENCH_10.json -max-regress 0 -slo "$SMOKE_SLO"
echo "load-smoke: baseline comparison and SLO gates ($SMOKE_SLO) passed"

"$WORK/peerload" -seed 1 -schedule constant:2000 -duration 2s -sessions 16 \
  -max-inflight 64 -slo "$LIVE_SLO"
echo "load-smoke: concurrent real-clock phase passed ($LIVE_SLO)"
echo "load-smoke: OK"
