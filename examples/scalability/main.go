// Scalability demonstrates Section V-B6: DyGroups is dominated by its
// sort and scales to very large populations. It times full 5-round
// simulations for both modes over increasing n and shows the time is
// essentially independent of k.
//
//	go run ./examples/scalability
package main

import (
	"fmt"
	"log"
	"time"

	"peerlearn"
	"peerlearn/internal/dist"
)

func main() {
	const alpha = 5
	fmt.Printf("%-10s %-8s %-16s %-16s\n", "n", "k", "DyGroups-Star", "DyGroups-Clique")
	for _, n := range []int{1000, 10000, 100000, 1000000} {
		skills := dist.Generate(n, dist.PaperLogNormal, 1)
		star := timeRun(skills, peerlearn.Star, 5, alpha, peerlearn.NewDyGroupsStar())
		clique := timeRun(skills, peerlearn.Clique, 5, alpha, peerlearn.NewDyGroupsClique())
		fmt.Printf("%-10d %-8d %-16s %-16s\n", n, 5, star, clique)
	}

	fmt.Println("\nindependence of k (n = 100000):")
	skills := dist.Generate(100000, dist.PaperLogNormal, 1)
	for _, k := range []int{5, 50, 500, 5000, 50000} {
		star := timeRun(skills, peerlearn.Star, k, alpha, peerlearn.NewDyGroupsStar())
		fmt.Printf("  k=%-7d %s\n", k, star)
	}
}

func timeRun(skills peerlearn.Skills, mode peerlearn.Mode, k, alpha int, g peerlearn.Grouper) time.Duration {
	cfg := peerlearn.Config{K: k, Rounds: alpha, Mode: mode, Gain: peerlearn.MustLinear(0.5)}
	start := time.Now()
	if _, err := peerlearn.Run(cfg, skills, g); err != nil {
		log.Fatal(err)
	}
	return time.Since(start).Round(time.Microsecond)
}
