// Affinity demonstrates the bi-criteria extension of the paper's
// Section VII: groups should both maximize learning gain and respect a
// time-evolving affinity between participants. It sweeps the trade-off
// weight λ on a cohort whose friendship graph disagrees with the skill
// ordering, and shows how the grouping shifts from friendship-driven
// (λ = 0) to pure DyGroups (λ = 1) while affinities evolve over rounds.
//
//	go run ./examples/affinity
package main

import (
	"fmt"
	"log"

	"peerlearn"
	"peerlearn/internal/affinity"
	"peerlearn/internal/core"
)

func main() {
	// A study cohort of 12 with skills 0.1..1.2 and a friendship graph
	// that pairs strong with weak members (cross-skill friendships).
	skills := make(peerlearn.Skills, 12)
	for i := range skills {
		skills[i] = 0.1 * float64(i+1)
	}
	edges := [][2]int{
		{0, 11}, {1, 10}, {2, 9}, {3, 8}, {4, 7}, {5, 6}, // cross-skill pairs
		{0, 1}, {10, 11}, // plus a couple of same-tier friendships
	}

	fmt.Println("cohort: 12 learners, friendship graph pairing strong with weak")
	fmt.Printf("%-6s %-14s %-16s %-18s\n", "λ", "learning-gain", "affinity-welfare", "mean affinity after")
	for _, lambda := range []float64{0, 0.25, 0.5, 0.75, 1} {
		m, err := affinity.FromGraph(len(skills), edges)
		if err != nil {
			log.Fatal(err)
		}
		g, err := affinity.NewGrouper(lambda, core.Star, peerlearn.MustLinear(0.5), m)
		if err != nil {
			log.Fatal(err)
		}
		res, err := affinity.Simulate(g, core.Skills(skills), 4, 3, affinity.DefaultEvolution)
		if err != nil {
			log.Fatal(err)
		}
		last := res.Rounds[len(res.Rounds)-1]
		fmt.Printf("%-6.2f %-14.4f %-16.4f %-18.4f\n", lambda, res.TotalGain, res.TotalWelfare, last.MeanAff)
	}
	fmt.Println("\nλ=1 maximizes learning (pure DyGroups); λ=0 keeps friends together.")
	fmt.Println("Repeated grouping grows familiarity: mean affinity rises over rounds.")
}
