// Quickstart for the peerlearn public API: set up a TDG instance, run
// DyGroups, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"peerlearn"
)

func main() {
	// Nine participants with skills 0.1 .. 0.9 — the paper's toy class.
	skills := peerlearn.Skills{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

	// Three groups of three, four rounds, star interaction (everyone
	// learns from the group's best member), learning rate 0.5.
	cfg := peerlearn.Config{
		K:      3,
		Rounds: 4,
		Mode:   peerlearn.Star,
		Gain:   peerlearn.MustLinear(0.5),
	}

	res, err := peerlearn.Run(cfg, skills, peerlearn.NewDyGroupsStar())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("policy: %s\n", res.Algorithm)
	for _, round := range res.Rounds {
		fmt.Printf("round %d: learning gain %.4f\n", round.Index, round.Gain)
	}
	fmt.Printf("total learning gain after %d rounds: %.4f\n", cfg.Rounds, res.TotalGain)
	fmt.Printf("mean skill: %.4f -> %.4f\n", res.Initial.Mean(), res.Final.Mean())

	// Compare against a random grouping of the same class.
	random, err := peerlearn.Run(cfg, skills, peerlearn.NewRandomAssignment(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random assignment total gain: %.4f (DyGroups is %.1f%% better)\n",
		random.TotalGain, 100*(res.TotalGain/random.TotalGain-1))
}
