// Factlearning simulates the paper's COVID-19 fact-learning deployment
// on Amazon Mechanical Turk (Section V-A): one population of crowd
// workers is pre-qualified with a 10-question HIT, then repeatedly
// grouped by DyGroups, lets the groups discuss, and re-assesses —
// printing the life of a single deployment round by round.
//
//	go run ./examples/factlearning
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"peerlearn"
	"peerlearn/internal/amt"
)

func main() {
	const (
		workers   = 32
		groupSize = 4
		rounds    = 3
		seed      = 2026
	)

	bank := amt.DefaultBank()
	fmt.Printf("question bank: %d COVID-19 facts and rumors\n", bank.Len())
	rng := rand.New(rand.NewSource(seed))
	sample := bank.Sample(rng, 2)
	for _, q := range sample {
		kind := "fact"
		if q.Rumor {
			kind = "rumor check"
		}
		fmt.Printf("  sample (%s): %s\n", kind, q.Text)
	}

	pool, err := amt.NewWorkerPool(rng, bank, workers, 10, 0.2, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	var pre float64
	for _, w := range pool {
		pre += w.Estimated
	}
	fmt.Printf("\nPRE-QUALIFICATION: %d workers, mean estimated skill %.3f\n", workers, pre/workers)

	cfg := amt.Config{
		GroupSize: groupSize,
		Rate:      0.5,
		Mode:      peerlearn.Star,
		Rounds:    rounds,
		Questions: 10,
		Noise:     0.05,
		Retention: amt.DefaultRetention,
	}
	res, err := amt.RunDeployment(cfg, pool, peerlearn.NewDyGroupsStar(), bank, rng)
	if err != nil {
		log.Fatal(err)
	}

	for _, rr := range res.Rounds {
		fmt.Printf("round %d: %2d active, %2d grouped | assessed gain %+.3f | latent gain %+.3f | mean skill %.3f | %2d stayed on\n",
			rr.Round, rr.Entering, rr.Participated, rr.AssessedGain, rr.LatentGain, rr.MeanEstimated, rr.Retained)
	}
	fmt.Printf("\ntotal assessed learning gain: %+.3f (latent %+.3f)\n", res.TotalAssessedGain, res.TotalLatentGain)
	fmt.Printf("mean estimated skill %.3f -> %.3f\n", res.PreMean, mean(res.PostScores))

	// Wall-clock side: the paper's 24h round windows and 1h per-worker
	// budget.
	participated := make([]int, len(res.Rounds))
	for i, rr := range res.Rounds {
		participated[i] = rr.Participated
	}
	timing, err := amt.DefaultTiming.SimulateTiming(participated, groupSize, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nschedule: longest round span %v of the %v window; busiest worker engaged %v of the %v budget\n",
		maxSpan(timing), amt.DefaultTiming.Window, timing.MaxWorkerTime, amt.DefaultTiming.WorkerBudget)
}

func maxSpan(r *amt.TimingReport) (span time.Duration) {
	for _, rt := range r.Rounds {
		if rt.Span > span {
			span = rt.Span
		}
	}
	return span
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
