// Platform demonstrates the HTTP grouping service: it starts the
// peerlearnd handler on an in-process listener, registers a cohort of
// learners, asks the API for a grouping, and runs a full simulated
// course — the "online learning platform" interaction the paper's
// introduction motivates.
//
//	go run ./examples/platform
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"peerlearn/internal/export"
	"peerlearn/internal/server"
)

func main() {
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()
	fmt.Printf("in-process platform at %s\n\n", ts.URL)

	skills := []float64{0.15, 0.25, 0.4, 0.45, 0.55, 0.6, 0.7, 0.75, 0.85, 0.3, 0.5, 0.9}

	// 1. Which policies does the platform offer?
	var algos map[string][]string
	getJSON(ts.URL+"/v1/algorithms", &algos)
	fmt.Printf("available policies: %v\n\n", algos["algorithms"])

	// 2. Form this week's study groups.
	var grouping server.GroupResponse
	postJSON(ts.URL+"/v1/group", server.GroupRequest{
		Skills: skills,
		K:      3,
		Mode:   "star",
	}, &grouping)
	fmt.Println("this week's groups (participant indices):")
	for gi, grp := range grouping.Groups {
		fmt.Printf("  group %d: %v\n", gi+1, grp)
	}
	fmt.Printf("expected learning gain this round: %.4f\n\n", grouping.Gain)

	// 3. Simulate the whole 4-assignment course.
	rate := 0.5
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", encode(server.SimulateRequest{
		Skills: skills,
		K:      3,
		Rounds: 4,
		Rate:   &rate,
		Mode:   "star",
	}))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sim, err := export.ReadSimulation(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("course simulation (%s):\n", sim.Algorithm)
	for i, g := range sim.RoundGains {
		fmt.Printf("  assignment %d: class gained %.4f\n", i+1, g)
	}
	fmt.Printf("total gain over the course: %.4f\n", sim.TotalGain)
}

func encode(v any) *bytes.Reader {
	data, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	return bytes.NewReader(data)
}

func postJSON(url string, req, out any) {
	resp, err := http.Post(url, "application/json", encode(req))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
