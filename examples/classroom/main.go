// Classroom walks through the paper's TOY EXAMPLE (Sections II–III): a
// Python programming course with 9 students, 4 assignments, and 3
// project groups per assignment. It prints the full grouping and skill
// traces for DyGroups-Star, an arbitrary locally optimal policy, and
// DyGroups-Clique — the same traces the paper prints, with the same
// 3-round totals (2.55, 2.40 and 2.334375).
//
//	go run ./examples/classroom
package main

import (
	"fmt"
	"log"
	"slices"

	"peerlearn"
	"peerlearn/internal/dygroups"
)

func main() {
	skills := peerlearn.Skills{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	fmt.Println("TOY EXAMPLE: 9 students, skills 0.1..0.9, k=3 groups, r=0.5")
	fmt.Println()

	trace("DyGroups-Star (Algorithm 2: teachers + descending blocks)",
		skills, peerlearn.Star, peerlearn.NewDyGroupsStar())
	trace("Ascending-Star (locally optimal, variance-minimizing ablation)",
		skills, peerlearn.Star, dygroups.NewAscendingStar())
	trace("DyGroups-Clique (Algorithm 3: rank round-robin)",
		skills, peerlearn.Clique, peerlearn.NewDyGroupsClique())
}

func trace(title string, skills peerlearn.Skills, mode peerlearn.Mode, policy peerlearn.Grouper) {
	cfg := peerlearn.Config{
		K:               3,
		Rounds:          3,
		Mode:            mode,
		Gain:            peerlearn.MustLinear(0.5),
		RecordGroupings: true,
		RecordSkills:    true,
	}
	res, err := peerlearn.Run(cfg, skills, policy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- %s ---\n", title)
	prev := res.Initial
	for _, round := range res.Rounds {
		fmt.Printf("round %d groups: ", round.Index)
		for gi, grp := range round.Grouping {
			if gi > 0 {
				fmt.Print(" ")
			}
			fmt.Print(groupSkills(prev, grp))
		}
		fmt.Printf("\n         gain: %.4f, skills after: %v\n", round.Gain, sortedDesc(round.Skills))
		prev = round.Skills
	}
	fmt.Printf("total learning gain after 3 rounds: %.6g\n\n", res.TotalGain)
}

// groupSkills renders a group as its member skills, highest first.
func groupSkills(s peerlearn.Skills, group []int) string {
	vals := make([]float64, len(group))
	for i, p := range group {
		vals[i] = s[p]
	}
	slices.SortFunc(vals, func(a, b float64) int {
		if a > b {
			return -1
		}
		if a < b {
			return 1
		}
		return 0
	})
	out := "["
	for i, v := range vals {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.4g", v)
	}
	return out + "]"
}

func sortedDesc(s peerlearn.Skills) []float64 {
	vals := append([]float64(nil), s...)
	slices.SortFunc(vals, func(a, b float64) int {
		if a > b {
			return -1
		}
		if a < b {
			return 1
		}
		return 0
	})
	for i, v := range vals {
		// Round for display stability.
		vals[i] = float64(int(v*1e6+0.5)) / 1e6
	}
	return vals
}
