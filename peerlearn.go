// Package peerlearn is the public API of this reproduction of "Peer
// Learning Through Targeted Dynamic Groups Formation" (Wei, Koutis,
// Basu Roy — ICDE 2021).
//
// The Targeted Dynamic Grouping (TDG) problem takes n participants with
// positive skill values, a number of groups k, a linear learning-gain
// function f(Δ) = r·Δ, and a horizon of α rounds; the goal is a sequence
// of groupings — one partition into k equi-sized groups per round — that
// maximizes the total learning gain. Two within-group interaction modes
// are supported: Star (learn from the group's best member) and Clique
// (learn from every better member, averaged).
//
// A minimal session:
//
//	skills := peerlearn.Skills{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
//	cfg := peerlearn.Config{K: 3, Rounds: 4, Mode: peerlearn.Star, Gain: peerlearn.MustLinear(0.5)}
//	res, err := peerlearn.Run(cfg, skills, peerlearn.NewDyGroupsStar())
//	// res.TotalGain is the aggregated learning gain over the 4 rounds.
//
// The facade re-exports the model types from internal/core and the
// grouping policies (DyGroups plus the paper's baselines); the exact
// brute-force solver, skill distributions, statistics, the simulated
// crowdsourcing platform, and the figure generators live in the internal
// packages and are exercised by the cmd/ binaries and examples/.
package peerlearn

import (
	"peerlearn/internal/baselines"
	"peerlearn/internal/core"
	"peerlearn/internal/dygroups"
)

// Model types, re-exported from internal/core.
type (
	// Skills holds the participants' positive skill values.
	Skills = core.Skills
	// Mode selects the within-group interaction structure.
	Mode = core.Mode
	// Gain is a learning-gain function f(Δ).
	Gain = core.Gain
	// Linear is the paper's f(Δ) = r·Δ.
	Linear = core.Linear
	// Grouping partitions participant indices into groups.
	Grouping = core.Grouping
	// Grouper is a per-round grouping policy.
	Grouper = core.Grouper
	// SizedGrouper additionally supports unequal group sizes.
	SizedGrouper = core.SizedGrouper
	// Config describes one TDG instance.
	Config = core.Config
	// Result is a full simulation outcome.
	Result = core.Result
	// Round is one round's record inside a Result.
	Round = core.Round
	// Workspace holds reusable scratch buffers that make repeated round
	// application and gain evaluation allocation-free at steady state
	// (see docs/PERFORMANCE.md). Not safe for concurrent use.
	Workspace = core.Workspace
)

// Interaction modes.
const (
	// Star: learn from the group's most skilled member (eq. 1).
	Star = core.Star
	// Clique: learn from all more skilled members, averaged (eq. 2).
	Clique = core.Clique
)

// NewLinear returns the linear gain f(Δ) = r·Δ, validating r ∈ (0, 1].
func NewLinear(r float64) (Linear, error) { return core.NewLinear(r) }

// MustLinear is NewLinear that panics on an invalid rate.
func MustLinear(r float64) Linear { return core.MustLinear(r) }

// Run executes a TDG simulation: α rounds of grouping (by g), skill
// update, and gain accounting (Algorithm 1 of the paper).
func Run(cfg Config, initial Skills, g Grouper) (*Result, error) {
	return core.Run(cfg, initial, g)
}

// RunSized executes the varying-group-size extension with a fixed size
// vector.
func RunSized(cfg Config, initial Skills, sizes []int, g SizedGrouper) (*Result, error) {
	return core.RunSized(cfg, initial, sizes, g)
}

// AggregateGain evaluates the aggregated learning gain LG(G) of a single
// grouping without updating skills (eq. 3).
func AggregateGain(s Skills, g Grouping, mode Mode, gain Gain) float64 {
	return core.AggregateGain(s, g, mode, gain)
}

// ApplyRound performs one learning round and returns the updated skills
// and the round's aggregated gain; the input is not modified.
func ApplyRound(s Skills, g Grouping, mode Mode, gain Gain) (Skills, float64, error) {
	return core.ApplyRound(s, g, mode, gain)
}

// NewWorkspace returns an empty Workspace. Callers that apply many
// rounds (or evaluate many gains) should hold one per goroutine and
// use its methods — ApplyRoundInPlace, GroupGain, AggregateGain — to
// keep the hot path free of per-call allocations.
func NewWorkspace() *Workspace { return core.NewWorkspace() }

// NewDyGroupsStar returns the paper's DyGroups-Star-Local policy
// (Algorithm 2): round-optimal teachers plus the variance-maximizing
// block assignment, optimal for the full problem at k = 2 (Theorem 5).
func NewDyGroupsStar() Grouper { return dygroups.NewStar() }

// NewDyGroupsClique returns the paper's DyGroups-Clique-Local policy
// (Algorithm 3): rank round-robin striping, round-optimal for the
// clique gain (Theorem 4).
func NewDyGroupsClique() Grouper { return dygroups.NewClique() }

// NewDyGroups returns the DyGroups policy matching the interaction mode.
func NewDyGroups(mode Mode) Grouper {
	if mode == Clique {
		return dygroups.NewClique()
	}
	return dygroups.NewStar()
}

// NewRandomAssignment returns the Random-Assignment baseline with a
// deterministic stream.
func NewRandomAssignment(seed int64) Grouper { return baselines.NewRandom(seed) }

// NewKMeans returns the paper's K-Means heuristic baseline.
func NewKMeans(seed int64) Grouper { return baselines.NewKMeans(seed) }

// NewLPA returns the LPA baseline (Esfandiari et al., KDD 2019;
// affinity-free core).
func NewLPA() Grouper { return baselines.NewLPA() }

// NewPercentilePartitions returns the Percentile-Partitions baseline
// (Agrawal et al., EDM 2017) with percentile parameter p; the paper uses
// p = 0.75.
func NewPercentilePartitions(p float64) (Grouper, error) { return baselines.NewPercentile(p) }

// NewAnnealing returns the simulated-annealing baseline (the
// operations-research comparison point of the extension experiments)
// for the given objective. All randomness comes from a stream seeded
// with seed, so equal seeds reproduce identical groupings.
func NewAnnealing(seed int64, mode Mode, gain Gain) Grouper {
	return baselines.NewAnnealing(seed, mode, gain)
}

// NewParallelAnnealing returns the deterministic parallel
// simulated-annealing grouper: it scales the anneal across
// GOMAXPROCS workers via windowed, conflict-free swap proposals while
// staying bit-identical at every worker count — equal seeds and
// inputs reproduce identical groupings whether it runs on one core or
// many.
func NewParallelAnnealing(seed int64, mode Mode, gain Gain) Grouper {
	return baselines.NewParallelAnnealing(seed, mode, gain)
}
