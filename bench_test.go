// Benchmarks regenerating every table and figure of the paper's
// evaluation (one testing.B target per figure; see DESIGN.md for the
// index). The benchmarks run the generators in quick mode so the full
// suite completes in minutes; run cmd/benchfig for the full-size sweeps.
package peerlearn_test

import (
	"testing"

	"peerlearn"
	"peerlearn/internal/dist"
	"peerlearn/internal/experiments"
)

// benchOpts is the shrunken configuration used by the figure benchmarks.
func benchOpts() experiments.Options {
	return experiments.Options{Seed: 1, Runs: 2, Quick: true, HumanTrials: 3}
}

func benchFigure(b *testing.B, id string) {
	b.Helper()
	opts := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Generate(id, opts); err != nil {
			b.Fatalf("figure %s: %v", id, err)
		}
	}
}

func BenchmarkFig01(b *testing.B)  { benchFigure(b, "1") }
func BenchmarkFig02(b *testing.B)  { benchFigure(b, "2") }
func BenchmarkFig03(b *testing.B)  { benchFigure(b, "3") }
func BenchmarkFig04a(b *testing.B) { benchFigure(b, "4a") }
func BenchmarkFig04b(b *testing.B) { benchFigure(b, "4b") }
func BenchmarkFig05a(b *testing.B) { benchFigure(b, "5a") }
func BenchmarkFig05b(b *testing.B) { benchFigure(b, "5b") }
func BenchmarkFig06a(b *testing.B) { benchFigure(b, "6a") }
func BenchmarkFig06b(b *testing.B) { benchFigure(b, "6b") }
func BenchmarkFig07a(b *testing.B) { benchFigure(b, "7a") }
func BenchmarkFig07b(b *testing.B) { benchFigure(b, "7b") }
func BenchmarkFig08a(b *testing.B) { benchFigure(b, "8a") }
func BenchmarkFig08b(b *testing.B) { benchFigure(b, "8b") }
func BenchmarkFig09a(b *testing.B) { benchFigure(b, "9a") }
func BenchmarkFig09b(b *testing.B) { benchFigure(b, "9b") }
func BenchmarkFig10a(b *testing.B) { benchFigure(b, "10a") }
func BenchmarkFig10b(b *testing.B) { benchFigure(b, "10b") }
func BenchmarkFig11a(b *testing.B) { benchFigure(b, "11a") }
func BenchmarkFig11b(b *testing.B) { benchFigure(b, "11b") }
func BenchmarkFig12a(b *testing.B) { benchFigure(b, "12a") }
func BenchmarkFig12b(b *testing.B) { benchFigure(b, "12b") }
func BenchmarkFig13a(b *testing.B) { benchFigure(b, "13a") }
func BenchmarkFig13b(b *testing.B) { benchFigure(b, "13b") }

// BenchmarkBruteForceValidation regenerates the Section V-B3 exactness
// table (Theorem 5 check).
func BenchmarkBruteForceValidation(b *testing.B) { benchFigure(b, "bf") }

// Ablation benches for the extension experiments (Section VII of the
// paper; see DESIGN.md "Extensions").
func BenchmarkExtGain(b *testing.B)          { benchFigure(b, "ext-gain") }
func BenchmarkExtSizes(b *testing.B)         { benchFigure(b, "ext-sizes") }
func BenchmarkExtTiebreak(b *testing.B)      { benchFigure(b, "ext-tiebreak") }
func BenchmarkExtConvergence(b *testing.B)   { benchFigure(b, "ext-convergence") }
func BenchmarkExtAffinity(b *testing.B)      { benchFigure(b, "ext-affinity") }
func BenchmarkExtChurn(b *testing.B)         { benchFigure(b, "ext-churn") }
func BenchmarkExtMetaheuristic(b *testing.B) { benchFigure(b, "ext-meta") }
func BenchmarkExtPercentile(b *testing.B)    { benchFigure(b, "ext-percentile") }

// Core algorithm micro-benchmarks: one full α=5-round simulation per
// iteration at the paper's default n = 10000, k = 5, r = 0.5 (and an
// n = 100000 pair that crosses core.ParallelRoundThreshold, so the
// sharded round application is exercised by a plain `go test -bench`).
func benchPolicyN(b *testing.B, n int, mode peerlearn.Mode, g peerlearn.Grouper) {
	b.Helper()
	skills := dist.Generate(n, dist.PaperLogNormal, 1)
	cfg := peerlearn.Config{K: 5, Rounds: 5, Mode: mode, Gain: peerlearn.MustLinear(0.5)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := peerlearn.Run(cfg, skills, g); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPolicy(b *testing.B, mode peerlearn.Mode, g peerlearn.Grouper) {
	b.Helper()
	benchPolicyN(b, 10000, mode, g)
}

func BenchmarkDyGroupsStar10k(b *testing.B) {
	benchPolicy(b, peerlearn.Star, peerlearn.NewDyGroupsStar())
}

func BenchmarkDyGroupsClique10k(b *testing.B) {
	benchPolicy(b, peerlearn.Clique, peerlearn.NewDyGroupsClique())
}

func BenchmarkDyGroupsStar100k(b *testing.B) {
	benchPolicyN(b, 100000, peerlearn.Star, peerlearn.NewDyGroupsStar())
}

func BenchmarkDyGroupsClique100k(b *testing.B) {
	benchPolicyN(b, 100000, peerlearn.Clique, peerlearn.NewDyGroupsClique())
}

func BenchmarkRandomAssignment10k(b *testing.B) {
	benchPolicy(b, peerlearn.Star, peerlearn.NewRandomAssignment(1))
}

func BenchmarkKMeans10k(b *testing.B) {
	benchPolicy(b, peerlearn.Star, peerlearn.NewKMeans(1))
}

func BenchmarkLPA10k(b *testing.B) {
	benchPolicy(b, peerlearn.Star, peerlearn.NewLPA())
}

func BenchmarkPercentile10k(b *testing.B) {
	p, err := peerlearn.NewPercentilePartitions(0.75)
	if err != nil {
		b.Fatal(err)
	}
	benchPolicy(b, peerlearn.Star, p)
}
