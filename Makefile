# Developer entry points for the peerlearn reproduction.

GO ?= go

.PHONY: all build test test-short race bench peerbench bench-smoke figures verify fmt vet lint lint-fix audit fuzz-smoke cover sim-smoke recovery-smoke peerload load-smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Full performance-regression sweep (includes the n=10⁶ raw-speed
# entries); refreshes the committed baseline.
peerbench:
	$(GO) run ./cmd/peerbench -out BENCH_9.json

# CI-sized sweep compared against the committed baseline (what the
# bench-smoke CI job runs at both GOMAXPROCS=1 and GOMAXPROCS=4); fails
# on a >25% ns/op regression or a serial-vs-parallel bit mismatch.
bench-smoke:
	$(GO) run ./cmd/peerbench -quick -out bench-quick.json -compare BENCH_9.json

# Refresh the committed serving-path latency baseline: the canonical
# deterministic smoke configuration (virtual clock, so every latency is
# a pure function of the seed and the report is byte-stable).
peerload:
	$(GO) run ./cmd/peerload -deterministic -seed 1 -schedule constant:500 -ops 4000 -sessions 16 -out BENCH_10.json

# Serving-path latency gate (the load-smoke CI job): byte-stability
# across two deterministic runs, entry-for-entry comparison against the
# committed BENCH_10.json at zero regression budget, absolute p99 SLOs,
# and a short concurrent real-clock phase.
load-smoke:
	bash scripts/load-smoke.sh

# Regenerate every paper figure at full size into results/.
figures:
	$(GO) run ./cmd/benchfig -fig all -out results

# Check the machine-checkable paper claims against freshly generated data.
verify:
	$(GO) run ./cmd/benchfig -verify

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# Static analysis: go vet plus the project-specific peerlint suite,
# test files included (ctxleak, determinism, floateq, goleak,
# guardedby, hotalloc, lockheld, mhp, modeswitch, panicfree,
# randsource, unlockpath — see docs/LINTERS.md).
lint: vet
	$(GO) run ./cmd/peerlint -tests ./...

# Apply peerlint's suggested fixes (defer insertions) in place.
lint-fix:
	$(GO) run ./cmd/peerlint -fix -tests ./...

# Inventory of every //peerlint:allow suppression with its
# justification, plus the module's contract directives (guardedby
# fields, hotpath and deterministic roots); fails if any allow lacks a
# reason.
audit:
	$(GO) run ./cmd/peerlint -tests -audit ./...

# Short fuzzing pass over every fuzz target, one at a time (the fuzz
# engine accepts a single -fuzz target per package invocation).
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -fuzz=FuzzApplyRoundInvariants -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -fuzz=FuzzGroupingValidate -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -fuzz=FuzzTheorem3FastMatchesNaive -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -fuzz=FuzzRadixSortDesc -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -fuzz=FuzzReplay -fuzztime=$(FUZZTIME) ./internal/ledger
	$(GO) test -fuzz=FuzzSessionReplay -fuzztime=$(FUZZTIME) ./internal/ledger
	$(GO) test -fuzz=FuzzCFGBuild -fuzztime=$(FUZZTIME) ./internal/analysis/cfg
	$(GO) test -fuzz=FuzzCallGraph -fuzztime=$(FUZZTIME) ./internal/analysis/callgraph
	$(GO) test -fuzz=FuzzMHP -fuzztime=$(FUZZTIME) ./internal/analysis/mhp
	$(GO) test -fuzz=FuzzMatchmakerOps -fuzztime=$(FUZZTIME) ./internal/simtest
	$(GO) test -fuzz=FuzzLoadReportParse -fuzztime=$(FUZZTIME) ./internal/load

# Coverage with an enforced floor: fails if total statement coverage
# drops below COVER_THRESHOLD percent (the committed floor CI gates on;
# raise it as coverage grows, never lower it to make a PR pass).
COVER_THRESHOLD ?= 70.0
cover:
	$(GO) test -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{sub(/%/, "", $$NF); print $$NF}'); \
	echo "total statement coverage: $$total% (floor $(COVER_THRESHOLD)%)"; \
	awk -v t="$$total" -v min="$(COVER_THRESHOLD)" 'BEGIN { exit (t+0 < min+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% is below the committed $(COVER_THRESHOLD)% floor"; exit 1; }

# Deterministic simulation sweep over a fixed seed corpus (the sim-smoke
# CI job). Any invariant violation prints the seed and a minimized
# schedule; replay locally with the printed peersim command line.
sim-smoke:
	$(GO) run ./cmd/peersim -seed 1 -runs 8 -ops 400 -faults all
	$(GO) run ./cmd/peersim -seed 101 -runs 4 -ops 300 -faults all -mode clique
	$(GO) run ./cmd/peersim -seed 201 -runs 4 -ops 300 -faults all -group-size 4 -clients 6

# End-to-end crash recovery against the real daemon binary: boot with
# -data-dir, drive a session over HTTP, kill -9, reboot over the same
# directory, and assert the status page comes back byte-identical (the
# recovery-smoke CI job).
recovery-smoke:
	bash scripts/recovery-smoke.sh

clean:
	rm -f cover.out test_output.txt bench_output.txt
