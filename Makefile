# Developer entry points for the peerlearn reproduction.

GO ?= go

.PHONY: all build test test-short race bench figures verify fmt vet cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper figure at full size into results/.
figures:
	$(GO) run ./cmd/benchfig -fig all -out results

# Check the machine-checkable paper claims against freshly generated data.
verify:
	$(GO) run ./cmd/benchfig -verify

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
